(* Tests for the Section 4 transformation engine: every rewrite rule must
   preserve the interpreter semantics on random programs and inputs, and
   the cost model must rank rewrites the same way the simulator does. *)

open Transform

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let value_of_list xs = Value.of_int_array (Array.of_list xs)

let eval_equal e1 e2 v = Value.equal (Ast.eval e1 v) (Ast.eval e2 v)

let nonempty_int_list = QCheck.(list_of_size (QCheck.Gen.int_range 1 40) small_int)

(* --- interpreter --------------------------------------------------------- *)

let test_eval_map () =
  let v = Ast.eval (Ast.Map Fn.double) (value_of_list [ 1; 2; 3 ]) in
  Alcotest.(check (array int)) "doubled" [| 2; 4; 6 |] (Value.to_int_array v)

let test_eval_compose_order () =
  (* Compose (f, g) applies g first. *)
  let e = Ast.Compose (Ast.Map Fn.double, Ast.Map Fn.incr) in
  let v = Ast.eval e (value_of_list [ 1 ]) in
  Alcotest.(check (array int)) "(x+1)*2" [| 4 |] (Value.to_int_array v)

let test_eval_fold_scan () =
  let arr = value_of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold add" 10 (Value.as_int (Ast.eval (Ast.Fold Fn.add) arr));
  Alcotest.(check (array int)) "scan add" [| 1; 3; 6; 10 |]
    (Value.to_int_array (Ast.eval (Ast.Scan Fn.add) arr))

let test_eval_foldr_compose () =
  (* foldr (add . square) [1;2;3] = 1 + 4 + 9 *)
  let v = Ast.eval (Ast.Foldr_compose (Fn.add, Fn.square)) (value_of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "sum of squares" 14 (Value.as_int v)

let test_eval_foldr_non_assoc () =
  (* foldr (sub . id): 1 - (2 - 3) = 2 — right fold semantics. *)
  let v = Ast.eval (Ast.Foldr_compose (Fn.sub, Fn.id)) (value_of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "right fold" 2 (Value.as_int v)

let test_eval_communication () =
  let arr = value_of_list [ 0; 10; 20; 30 ] in
  Alcotest.(check (array int)) "rotate" [| 10; 20; 30; 0 |]
    (Value.to_int_array (Ast.eval (Ast.Rotate 1) arr));
  Alcotest.(check (array int)) "fetch shift" [| 10; 20; 30; 0 |]
    (Value.to_int_array (Ast.eval (Ast.Fetch (Fn.i_shift 1)) arr));
  Alcotest.(check (array int)) "send shift" [| 30; 0; 10; 20 |]
    (Value.to_int_array (Ast.eval (Ast.Send (Fn.i_shift 1)) arr))

let test_eval_split_combine () =
  let arr = value_of_list [ 1; 2; 3; 4; 5 ] in
  let nested = Ast.eval (Ast.Split 2) arr in
  (match nested with
  | Value.Arr [| Value.Arr a; Value.Arr b |] ->
      Alcotest.(check int) "first group" 3 (Array.length a);
      Alcotest.(check int) "second group" 2 (Array.length b)
  | _ -> Alcotest.fail "expected two groups");
  Alcotest.(check bool) "combine inverts" true
    (Value.equal arr (Ast.eval (Ast.Compose (Ast.Combine, Ast.Split 2)) arr))

let test_eval_iter_for () =
  let e = Ast.Iter_for (3, Ast.Map Fn.incr) in
  Alcotest.(check (array int)) "+3" [| 3; 4 |] (Value.to_int_array (Ast.eval e (value_of_list [ 0; 1 ])))

let test_eval_type_errors () =
  Alcotest.(check bool) "map on scalar" true
    (try
       ignore (Ast.eval (Ast.Map Fn.incr) (Value.Int 3));
       false
     with Value.Type_error _ -> true);
  Alcotest.(check bool) "fold on empty" true
    (try
       ignore (Ast.eval (Ast.Fold Fn.add) (Value.Arr [||]));
       false
     with Value.Type_error _ -> true)

let test_chain_roundtrip () =
  let e = Ast.Compose (Ast.Map Fn.incr, Ast.Compose (Ast.Rotate 2, Ast.Map Fn.double)) in
  let chain = Ast.to_chain e in
  Alcotest.(check int) "three stages" 3 (List.length chain);
  Alcotest.(check bool) "of_chain . to_chain preserves meaning" true
    (eval_equal e (Ast.of_chain chain) (value_of_list [ 1; 2; 3; 4 ]))

(* --- individual rules preserve semantics ---------------------------------- *)

let check_rule_preserves name rule e xs =
  match rule.Rules.apply_at (Ast.to_chain e) with
  | None -> true
  | Some (chain', _) ->
      let e' = Ast.of_chain chain' in
      let v = value_of_list xs in
      ignore name;
      Value.equal (Ast.eval e v) (Ast.eval e' v)

let prop_map_fusion_sound =
  qtest "map fusion preserves semantics" nonempty_int_list (fun xs ->
      let e = Ast.Compose (Ast.Map Fn.double, Ast.Map Fn.incr) in
      check_rule_preserves "map-fusion" Rules.map_fusion e xs)

let test_map_fusion_fires () =
  let e = Ast.Compose (Ast.Map Fn.double, Ast.Map Fn.incr) in
  let e', steps = Rewrite.normalize e in
  Alcotest.(check int) "one step" 1 (List.length steps);
  match e' with
  | Ast.Map f -> Alcotest.(check string) "fused name" "double.incr" f.Fn.name
  | _ -> Alcotest.failf "expected a single map, got %s" (Ast.to_string e')

let prop_map_distribution_sound =
  qtest "map distribution preserves semantics" nonempty_int_list (fun xs ->
      let e = Ast.Foldr_compose (Fn.add, Fn.square) in
      check_rule_preserves "map-distribution" Rules.map_distribution e xs)

let test_map_distribution_fires () =
  let e', steps = Rewrite.normalize (Ast.Foldr_compose (Fn.add, Fn.square)) in
  Alcotest.(check bool) "rewrote" true (steps <> []);
  Alcotest.(check string) "fold . map" "fold add . map square" (Ast.to_string e')

let test_map_distribution_respects_associativity () =
  (* sub is not associative: the rule must not fire. *)
  let e = Ast.Foldr_compose (Fn.sub, Fn.square) in
  let e', steps = Rewrite.normalize e in
  Alcotest.(check int) "no steps" 0 (List.length steps);
  Alcotest.(check bool) "unchanged" true (e == e')

let prop_send_fusion_sound =
  qtest "send fusion preserves semantics"
    QCheck.(pair nonempty_int_list (pair (int_range 0 10) (int_range 0 10)))
    (fun (xs, (a, b)) ->
      let e = Ast.Compose (Ast.Send (Fn.i_shift a), Ast.Send (Fn.i_shift b)) in
      check_rule_preserves "send-fusion" Rules.send_fusion e xs)

let prop_fetch_fusion_sound =
  qtest "fetch fusion preserves semantics"
    QCheck.(pair nonempty_int_list (pair (int_range 0 10) (int_range 0 10)))
    (fun (xs, (a, b)) ->
      let e = Ast.Compose (Ast.Fetch (Fn.i_shift a), Ast.Fetch (Fn.i_shift b)) in
      check_rule_preserves "fetch-fusion" Rules.fetch_fusion e xs)

let prop_fetch_fusion_with_reverse =
  qtest "fetch reverse . fetch shift fuses correctly"
    QCheck.(pair nonempty_int_list (int_range 0 10))
    (fun (xs, k) ->
      let e = Ast.Compose (Ast.Fetch Fn.i_reverse, Ast.Fetch (Fn.i_shift k)) in
      let e', _ = Rewrite.normalize e in
      eval_equal e e' (value_of_list xs))

let prop_rotate_fusion_sound =
  qtest "rotate fusion preserves semantics"
    QCheck.(pair nonempty_int_list (pair (int_range (-10) 10) (int_range (-10) 10)))
    (fun (xs, (a, b)) ->
      let e = Ast.Compose (Ast.Rotate a, Ast.Rotate b) in
      let e', _ = Rewrite.normalize e in
      eval_equal e e' (value_of_list xs))

let test_rotate_fusion_result () =
  let e', _ = Rewrite.normalize (Ast.Compose (Ast.Rotate 2, Ast.Rotate 3)) in
  Alcotest.(check string) "single rotate" "rotate 5" (Ast.to_string e')

let prop_rotate_fetch_fusion_sound =
  qtest "rotate/fetch absorption preserves semantics"
    QCheck.(triple nonempty_int_list (int_range (-8) 8) (int_range 0 8))
    (fun (xs, k, j) ->
      let e1 = Ast.of_chain [ Ast.Rotate k; Ast.Fetch (Fn.i_shift j) ] in
      let e2 = Ast.of_chain [ Ast.Fetch (Fn.i_shift j); Ast.Rotate k ] in
      let e3 = Ast.of_chain [ Ast.Rotate k; Ast.Fetch Fn.i_reverse ] in
      let v = value_of_list xs in
      List.for_all
        (fun e ->
          let e', _ = Rewrite.normalize e in
          eval_equal e e' v)
        [ e1; e2; e3 ])

let test_rotate_fetch_fuses () =
  let e = Ast.of_chain [ Ast.Rotate 3; Ast.Fetch Fn.i_reverse ] in
  let e', _ = Rewrite.normalize e in
  Alcotest.(check int) "single stage" 1 (List.length (Ast.to_chain e'));
  match Ast.to_chain e' with
  | [ Ast.Fetch _ ] -> ()
  | _ -> Alcotest.failf "expected a fused fetch, got %s" (Ast.to_string e')

let test_rotate_cancellation () =
  let e', _ = Rewrite.normalize (Ast.Compose (Ast.Rotate 2, Ast.Rotate (-2))) in
  Alcotest.(check string) "cancels to id" "id" (Ast.to_string e')

let test_identity_elim () =
  let e = Ast.Compose (Ast.Id, Ast.Compose (Ast.Map Fn.incr, Ast.Rotate 0)) in
  let e', _ = Rewrite.normalize e in
  Alcotest.(check string) "cleaned" "map incr" (Ast.to_string e')

let test_split_combine_elim () =
  let e = Ast.Compose (Ast.Combine, Ast.Split 4) in
  let e', _ = Rewrite.normalize e in
  Alcotest.(check string) "id" "id" (Ast.to_string e')

let prop_nested_map_flatten_sound =
  qtest "flattening(map) preserves semantics"
    QCheck.(pair nonempty_int_list (int_range 1 6))
    (fun (xs, p) ->
      let e =
        Ast.Compose (Ast.Combine, Ast.Compose (Ast.Map_nested (Ast.Map Fn.square), Ast.Split p))
      in
      let e', _ = Rewrite.normalize e in
      eval_equal e e' (value_of_list xs))

let test_nested_map_flatten_fires () =
  let e =
    Ast.Compose (Ast.Combine, Ast.Compose (Ast.Map_nested (Ast.Map Fn.square), Ast.Split 4))
  in
  let e', _ = Rewrite.normalize e in
  Alcotest.(check string) "flat map" "map square" (Ast.to_string e')

let prop_nested_fold_flatten_sound =
  qtest "flattening(fold) preserves semantics"
    QCheck.(pair nonempty_int_list (int_range 1 6))
    (fun (xs, p) ->
      (* groups can be empty when p > n: Map_nested (Fold) would fail, so
         size the split to the data *)
      let p = max 1 (min p (List.length xs)) in
      let e =
        Ast.Compose (Ast.Fold Fn.add, Ast.Compose (Ast.Map_nested (Ast.Fold Fn.add), Ast.Split p))
      in
      let e', _ = Rewrite.normalize e in
      eval_equal e e' (value_of_list xs))

let test_nested_fold_flatten_fires () =
  let e =
    Ast.Compose (Ast.Fold Fn.add, Ast.Compose (Ast.Map_nested (Ast.Fold Fn.add), Ast.Split 2))
  in
  let e', _ = Rewrite.normalize e in
  Alcotest.(check string) "flat fold" "fold add" (Ast.to_string e')

let prop_iter_unroll_sound =
  qtest "iterFor unrolling + rotate fusion preserves semantics"
    QCheck.(pair nonempty_int_list (int_range 0 8))
    (fun (xs, k) ->
      let e = Ast.Iter_for (k, Ast.Rotate 1) in
      let e', _ = Rewrite.normalize ~rules:Rules.all e in
      eval_equal e e' (value_of_list xs))

let test_iter_unroll_fuses_rotations () =
  let e = Ast.Iter_for (5, Ast.Rotate 1) in
  let e', _ = Rewrite.normalize ~rules:Rules.all e in
  Alcotest.(check string) "five rotations become one" "rotate 5" (Ast.to_string e')

(* --- whole-pipeline property: normalisation preserves semantics ------------ *)

(* Random flat pipelines over int arrays. *)
let gen_stage =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun f -> Ast.Map f) (oneofl [ Fn.incr; Fn.double; Fn.square; Fn.negate ]));
        (1, return (Ast.Imap Fn.add_index));
        (1, map (fun k -> Ast.Rotate k) (int_range (-5) 5));
        (1, map (fun k -> Ast.Fetch (Fn.i_shift k)) (int_range 0 5));
        (1, map (fun k -> Ast.Send (Fn.i_shift k)) (int_range 0 5));
        (1, return (Ast.Fetch Fn.i_reverse));
        (1, map (fun f -> Ast.Scan f) (oneofl [ Fn.add; Fn.imax ]));
      ])

let gen_pipeline = QCheck.Gen.(map Ast.of_chain (list_size (int_range 0 8) gen_stage))

let arb_pipeline = QCheck.make ~print:Ast.to_string gen_pipeline

let prop_normalize_preserves_semantics =
  qtest ~count:500 "normalize preserves semantics on random pipelines"
    QCheck.(pair arb_pipeline nonempty_int_list)
    (fun (e, xs) ->
      let e', _ = Rewrite.normalize e in
      eval_equal e e' (value_of_list xs))

let prop_normalize_idempotent =
  qtest ~count:200 "normalize is idempotent" arb_pipeline (fun e ->
      let e', _ = Rewrite.normalize e in
      let e'', steps = Rewrite.normalize e' in
      steps = [] && Ast.to_string e' = Ast.to_string e'')

let prop_normalize_never_grows =
  qtest ~count:200 "normalize never grows the pipeline" arb_pipeline (fun e ->
      let e', _ = Rewrite.normalize e in
      Ast.size e' <= Ast.size e)

(* --- cost model -------------------------------------------------------------- *)

let test_cost_fusion_improves () =
  let e = Ast.Compose (Ast.Map Fn.double, Ast.Map Fn.incr) in
  let e', _ = Rewrite.normalize e in
  let c = Cost.estimate_pipeline ~procs:16 ~n:65536 e in
  let c' = Cost.estimate_pipeline ~procs:16 ~n:65536 e' in
  Alcotest.(check bool) "fused is cheaper" true (c' < c)

let test_cost_map_distribution_improves () =
  let e = Ast.Foldr_compose (Fn.add, Fn.square) in
  let e', _ = Rewrite.normalize e in
  let c = Cost.estimate_pipeline ~procs:16 ~n:65536 e in
  let c' = Cost.estimate_pipeline ~procs:16 ~n:65536 e' in
  Alcotest.(check bool) "parallelised is cheaper" true (c' < c)

let test_cost_monotone_in_n () =
  let e = Ast.Map Fn.square in
  let c1 = Cost.estimate_pipeline ~procs:4 ~n:1000 e in
  let c2 = Cost.estimate_pipeline ~procs:4 ~n:100000 e in
  Alcotest.(check bool) "bigger input costs more" true (c2 > c1)

let test_optimizer_report () =
  let e =
    Ast.Compose
      (Ast.Rotate 1, Ast.Compose (Ast.Rotate 2, Ast.Compose (Ast.Map Fn.incr, Ast.Map Fn.double)))
  in
  let r = Optimizer.optimize ~procs:8 ~n:4096 e in
  Alcotest.(check bool) "cost not worse" true (r.Optimizer.cost_after <= r.Optimizer.cost_before);
  Alcotest.(check string) "fully fused" "rotate 3 . map incr.double" (Ast.to_string r.Optimizer.output)

(* --- cost-driven search ------------------------------------------------------ *)

(* A workload where greedy normalisation over the default rules stalls:
   flattening and fusion fire, but without the commuting rules the map
   behind the rotate never joins the front group. Beam search over the
   full rule set finds the strictly cheaper fully-fused plan. *)
let search_workload =
  Ast.of_chain
    [
      Ast.Split 4;
      Ast.Map_nested (Ast.Map Fn.incr);
      Ast.Combine;
      Ast.Map Fn.double;
      Ast.Rotate 3;
      Ast.Map Fn.square;
    ]

let test_search_beats_greedy_on_commuting () =
  let g = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.Greedy search_workload in
  let b = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.default_beam search_workload in
  Alcotest.(check bool) "beam never worse than greedy" true
    (b.Optimizer.cost_after <= g.Optimizer.cost_after);
  Alcotest.(check bool) "beam strictly better here" true
    (b.Optimizer.cost_after < g.Optimizer.cost_after);
  Alcotest.(check string) "fully fused across the rotate" "rotate 3 . map square.double.incr"
    (Ast.to_string b.Optimizer.output);
  Alcotest.(check bool) "frontier explored" true (b.Optimizer.explored > 1)

let test_search_makespan_not_worse () =
  (* The cost ranking must be real: the searched plan's simulated makespan
     is within tolerance of (here: strictly below) the greedy plan's. *)
  let input = Value.of_int_array (Array.init 4096 Fun.id) in
  let g = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.Greedy search_workload in
  let b = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.default_beam search_workload in
  let vg, sg = Sim_exec.run ~procs:8 g.Optimizer.output input in
  let vb, sb = Sim_exec.run ~procs:8 b.Optimizer.output input in
  Alcotest.(check bool) "plans agree on the value" true (Value.equal vg vb);
  Alcotest.(check bool) "searched makespan within tolerance of greedy" true
    (sb.Machine.Sim.makespan <= sg.Machine.Sim.makespan *. 1.05)

let prop_search_never_worse_than_greedy =
  qtest ~count:100 "beam search never costs more than greedy"
    (QCheck.make ~print:Ast.to_string gen_pipeline)
    (fun e ->
      let g = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.Greedy e in
      let b = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.default_beam e in
      b.Optimizer.cost_after <= g.Optimizer.cost_after +. 1e-12)

let prop_search_sound =
  qtest ~count:100 "beam-optimized pipeline preserves semantics"
    QCheck.(pair arb_pipeline nonempty_int_list)
    (fun (e, xs) ->
      let b = Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.default_beam e in
      eval_equal e b.Optimizer.output (value_of_list xs))

let prop_optimize_idempotent =
  qtest ~count:60 "optimize (optimize e) is a fixed point"
    (QCheck.make ~print:Ast.to_string gen_pipeline)
    (fun e ->
      let once =
        (Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.default_beam e).Optimizer.output
      in
      let twice =
        (Optimizer.optimize ~procs:8 ~n:4096 ~strategy:Optimizer.default_beam once)
          .Optimizer.output
      in
      Ast.to_string once = Ast.to_string twice)

(* --- simulator execution agrees with interpreter ---------------------------- *)

let prop_sim_exec_matches_interpreter =
  qtest ~count:50 "pipeline on the simulator = interpreter"
    QCheck.(triple arb_pipeline nonempty_int_list (int_range 1 4))
    (fun (e, xs, procs) ->
      let procs = max 1 procs in
      let v = value_of_list xs in
      let expected = Ast.eval e v in
      let got, _ = Sim_exec.run ~procs e v in
      Value.equal expected got)

let test_sim_exec_optimized_is_faster () =
  (* Ground truth for the cost model: a fusable pipeline must be measurably
     faster on the simulator after rewriting. *)
  let e =
    Ast.of_chain
      [ Ast.Map Fn.incr; Ast.Map Fn.double; Ast.Map Fn.square; Ast.Rotate 1; Ast.Rotate 2 ]
  in
  let e', _ = Rewrite.normalize e in
  let input = Value.of_int_array (Array.init 4096 Fun.id) in
  let v1, s1 = Sim_exec.run ~procs:8 e input in
  let v2, s2 = Sim_exec.run ~procs:8 e' input in
  Alcotest.(check bool) "same result" true (Value.equal v1 v2);
  Alcotest.(check bool) "optimized pipeline is faster on the simulator" true
    (s2.Machine.Sim.makespan < s1.Machine.Sim.makespan)

let test_sim_exec_segmented () =
  (* One level of split .. mapn .. combine now runs flat on the simulator:
     the payload stays block-distributed, only the segment descriptor
     changes shape. *)
  let e =
    Ast.of_chain
      [
        Ast.Split 3;
        Ast.Map_nested (Ast.of_chain [ Ast.Map Fn.incr; Ast.Scan Fn.add; Ast.Rotate 1 ]);
        Ast.Combine;
      ]
  in
  let v = value_of_list [ 1; 2; 3; 4; 5; 6; 7 ] in
  List.iter
    (fun procs ->
      let got, _ = Sim_exec.run ~procs e v in
      Alcotest.(check bool)
        (Printf.sprintf "segmented = interpreter at p=%d" procs)
        true
        (Value.equal (Ast.eval e v) got))
    [ 1; 2; 4 ]

let test_sim_exec_segmented_fold () =
  (* mapn [fold] leaves one scalar per group — already a flat array, no
     combine needed; the segmented executor's allgather-of-partials must
     agree with the interpreter, including when the pipeline continues
     with flat stages afterwards. *)
  let e =
    Ast.of_chain [ Ast.Split 2; Ast.Map_nested (Ast.Fold Fn.add); Ast.Map Fn.double ]
  in
  let v = value_of_list [ 1; 2; 3; 4; 5 ] in
  let got, _ = Sim_exec.run ~procs:4 e v in
  Alcotest.(check bool) "per-group folds, then a flat map" true (Value.equal (Ast.eval e v) got)

let test_sim_exec_rejects_deeper_nesting () =
  (* The segmented representation is one level deep: a split inside a
     segmented region is still out of scope (as documented). *)
  let e = Ast.of_chain [ Ast.Split 2; Ast.Split 2 ] in
  Alcotest.(check bool) "double split unsupported" true
    (try
       ignore (Sim_exec.run ~procs:2 e (value_of_list [ 1; 2; 3; 4 ]));
       false
     with Sim_exec.Unsupported _ -> true)

let test_nested_cross_backend () =
  (* Acceptance gate for the segmented representation: nested pipelines —
     one that stays segmented (scan body) and one the beam search flattens
     away entirely — compute the identical value on the reference
     interpreter, the sequential host backend, a 3-domain pool, and the
     simulator at p in {1,2,4}. *)
  let segmented =
    Parser.parse_exn "map double . combine . mapn [ scan add . map incr ] . split 3"
  in
  let v = Value.of_int_array (Array.init 11 (fun i -> i * 7 mod 13)) in
  let pool = Runtime.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      List.iter
        (fun nested ->
          let expected = Ast.eval nested v in
          let b = Optimizer.optimize ~procs:4 ~n:11 ~strategy:Optimizer.default_beam nested in
          List.iter
            (fun e ->
              let name = Ast.to_string e in
              Alcotest.(check bool) ("host-seq: " ^ name) true
                (Value.equal expected (Host_exec.eval e v));
              Alcotest.(check bool) ("host-pool: " ^ name) true
                (Value.equal expected (Host_exec.eval ~exec:(Scl.Exec.on_pool pool) e v));
              List.iter
                (fun procs ->
                  let got, _ = Sim_exec.run ~procs e v in
                  Alcotest.(check bool)
                    (Printf.sprintf "sim p=%d: %s" procs name)
                    true (Value.equal expected got))
                [ 1; 2; 4 ])
            [ nested; b.Optimizer.output ])
        [ segmented; search_workload ])

(* --- commuting rules ---------------------------------------------------------- *)

let prop_commute_sound =
  qtest ~count:300 "aggressive normalisation preserves semantics"
    QCheck.(pair arb_pipeline nonempty_int_list)
    (fun (e, xs) ->
      let e', _ = Rewrite.normalize ~rules:Rules.aggressive e in
      eval_equal e e' (value_of_list xs))

let test_commute_enables_fusion () =
  let e = Ast.of_chain [ Ast.Map Fn.incr; Ast.Rotate 3; Ast.Map Fn.double ] in
  let e', _ = Rewrite.normalize ~rules:Rules.aggressive e in
  Alcotest.(check string) "maps fused across the rotate" "rotate 3 . map double.incr"
    (Ast.to_string e')

let test_commute_terminates_and_idempotent () =
  let e =
    Ast.of_chain
      [ Ast.Map Fn.incr; Ast.Rotate 1; Ast.Map Fn.double; Ast.Fetch (Fn.i_shift 2); Ast.Map Fn.square ]
  in
  let e', _ = Rewrite.normalize ~rules:Rules.aggressive e in
  let e'', steps = Rewrite.normalize ~rules:Rules.aggressive e' in
  Alcotest.(check int) "fixpoint" 0 (List.length steps);
  Alcotest.(check string) "stable" (Ast.to_string e') (Ast.to_string e'')

let test_commute_moves_all_maps_front () =
  let e = Ast.of_chain [ Ast.Rotate 1; Ast.Map Fn.incr; Ast.Rotate 2; Ast.Map Fn.double ] in
  let e', _ = Rewrite.normalize ~rules:Rules.aggressive e in
  Alcotest.(check string) "single map then single rotate" "rotate 3 . map double.incr"
    (Ast.to_string e')

(* --- parser ---------------------------------------------------------------------- *)

let test_parse_simple () =
  let e = Parser.parse_exn "map square . rotate 3 . fold add" in
  Alcotest.(check string) "parsed" "map square . rotate 3 . fold add" (Ast.to_string e)

let test_parse_apply_order () =
  (* rightmost stage applies first, as in the paper's composition *)
  let e = Parser.parse_exn "map double . map incr" in
  let v = Ast.eval e (value_of_list [ 1 ]) in
  Alcotest.(check (array int)) "(1+1)*2" [| 4 |] (Value.to_int_array v)

let test_parse_nested () =
  let e = Parser.parse_exn "combine . mapn [ map square . rotate 1 ] . split 4" in
  let v = Ast.eval e (value_of_list [ 1; 2; 3; 4; 5; 6; 7; 8 ]) in
  Alcotest.(check int) "evaluates" 8 (Array.length (Value.to_int_array v))

let test_parse_iter () =
  let e = Parser.parse_exn "iter 3 [ rotate 1 ]" in
  Alcotest.(check (array int)) "three rotations"
    [| 3; 0; 1; 2 |]
    (Value.to_int_array (Ast.eval e (value_of_list [ 0; 1; 2; 3 ])))

let test_parse_foldr () =
  let e = Parser.parse_exn "foldr add square" in
  Alcotest.(check int) "sum of squares" 14 (Value.as_int (Ast.eval e (value_of_list [ 1; 2; 3 ])))

let test_parse_shift () =
  let e = Parser.parse_exn "fetch shift:-2" in
  Alcotest.(check (array int)) "negative shift"
    [| 2; 3; 0; 1 |]
    (Value.to_int_array (Ast.eval e (value_of_list [ 0; 1; 2; 3 ])))

let test_parse_errors () =
  let bad src =
    match Parser.parse src with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unknown skeleton" true (bad "frobnicate 3");
  Alcotest.(check bool) "unknown function" true (bad "map frob");
  Alcotest.(check bool) "missing arg" true (bad "rotate");
  Alcotest.(check bool) "non-integer arg" true (bad "rotate x");
  Alcotest.(check bool) "unclosed bracket" true (bad "mapn [ map incr");
  Alcotest.(check bool) "trailing garbage" true (bad "map incr ]");
  Alcotest.(check bool) "bad split" true (bad "split 0");
  Alcotest.(check bool) "dangling dot" true (bad "map incr .")

let test_parse_error_position () =
  match Parser.parse "map incr . map frob" with
  | Error { position; _ } -> Alcotest.(check int) "points at the bad name" 15 position
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_print_parse_nested_regression () =
  (* Regression: Ast.pp used to print Map_nested as "map [ ... ]" and
     Iter_for as "iterFor k [ ... ]" — neither re-parses ("map" takes a
     function name, "iterFor" is not a keyword). The printer now agrees
     with the surface syntax, so nested pipelines survive a print/parse
     round trip. *)
  let e =
    Ast.of_chain
      [
        Ast.Split 2;
        Ast.Map_nested (Ast.of_chain [ Ast.Map Fn.incr; Ast.Rotate 1 ]);
        Ast.Combine;
      ]
  in
  Alcotest.(check string) "printed in surface syntax"
    "combine . mapn [ rotate 1 . map incr ] . split 2" (Ast.to_string e);
  Alcotest.(check string) "nested print/parse round trip" (Ast.to_string e)
    (Ast.to_string (Parser.parse_exn (Ast.to_string e)));
  let it = Ast.Iter_for (2, Ast.Map Fn.incr) in
  Alcotest.(check string) "iter printed in surface syntax" "iter 2 [ map incr ]"
    (Ast.to_string it);
  Alcotest.(check string) "iter print/parse round trip" (Ast.to_string it)
    (Ast.to_string (Parser.parse_exn (Ast.to_string it)))

(* Round-trip: printing then parsing reconstructs the pipeline. *)
let gen_parseable_stage =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun f -> Ast.Map f) (oneofl [ Fn.incr; Fn.double; Fn.square; Fn.negate; Fn.halve ]));
        (1, map (fun f -> Ast.Fold f) (oneofl [ Fn.add; Fn.mul; Fn.imax ]));
        (1, map (fun f -> Ast.Scan f) (oneofl [ Fn.add; Fn.imin ]));
        (1, map (fun (f, g) -> Ast.Foldr_compose (f, g)) (pair (oneofl [ Fn.add; Fn.sub ]) (oneofl [ Fn.square; Fn.incr ])));
        (1, map (fun k -> Ast.Rotate k) (int_range (-9) 9));
        (1, map (fun k -> Ast.Fetch (Fn.i_shift k)) (int_range (-5) 5));
        (1, map (fun k -> Ast.Send (Fn.i_shift k)) (int_range 0 5));
        (1, return (Ast.Fetch Fn.i_reverse));
        (1, map (fun p -> Ast.Split (1 + p)) (int_range 0 5));
        (1, return Ast.Combine);
        (1, return (Ast.Imap Fn.add_index));
        ( 1,
          map
            (fun f -> Ast.Map_nested (Ast.Map f))
            (oneofl [ Fn.incr; Fn.double; Fn.square ]) );
        ( 1,
          map2
            (fun k f -> Ast.Iter_for (k, Ast.Map f))
            (int_range 0 3)
            (oneofl [ Fn.incr; Fn.square ]) );
      ])

let gen_parseable =
  QCheck.Gen.(map Ast.of_chain (list_size (int_range 1 7) gen_parseable_stage))

let prop_parse_roundtrip =
  qtest ~count:300 "parse (to_source e) = e"
    (QCheck.make ~print:Ast.to_string gen_parseable)
    (fun e ->
      match Parser.to_source e with
      | None -> false
      | Some src -> (
          match Parser.parse src with
          | Ok e' -> Ast.to_string e = Ast.to_string e'
          | Error _ -> false))

let test_to_source_rejects_fused () =
  let fused = Ast.Map (Fn.compose Fn.incr Fn.double) in
  Alcotest.(check bool) "fused names are print-only" true (Parser.to_source fused = None)

(* --- robustness / meta properties ------------------------------------------------ *)

let prop_parser_never_crashes =
  qtest ~count:500 "parser total on arbitrary input (Ok or Error, no exception)"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 60) QCheck.Gen.printable)
    (fun src ->
      match Parser.parse src with
      | Ok _ | Error _ -> true)

let prop_program_parser_never_crashes =
  qtest ~count:300 "program parser total on arbitrary input"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun src ->
      match Parser.parse_program src with
      | Ok _ | Error _ -> true)

let prop_cost_additive_over_compose =
  qtest ~count:200 "cost of a composition = sum of stage costs"
    (QCheck.make ~print:Ast.to_string gen_pipeline)
    (fun e ->
      let total = Cost.estimate_pipeline ~procs:8 ~n:4096 e in
      let parts =
        List.fold_left
          (fun acc st -> acc +. Cost.estimate_pipeline ~procs:8 ~n:4096 st)
          0.0 (Ast.to_chain e)
      in
      Float.abs (total -. parts) <= 1e-12 *. Float.max 1.0 total)

let prop_optimizer_never_worse =
  qtest ~count:200 "optimizer never increases estimated cost"
    (QCheck.make ~print:Ast.to_string gen_pipeline)
    (fun e ->
      let r = Optimizer.optimize ~procs:8 ~n:4096 e in
      r.Optimizer.cost_after <= r.Optimizer.cost_before +. 1e-15)

(* --- programs (let-definitions) ---------------------------------------------- *)

let test_program_basic () =
  let defs =
    Parser.parse_program_exn
      "let sweep = map incr . rotate 2\nlet main = fold add . sweep . sweep"
  in
  Alcotest.(check (list string)) "definition names" [ "sweep"; "main" ] (List.map fst defs);
  let main = List.assoc "main" defs in
  (* references are inlined: 2 sweeps of 2 stages + the fold *)
  Alcotest.(check int) "inlined stage count" 5 (List.length (Ast.to_chain main))

let test_program_semantics () =
  let defs =
    Parser.parse_program_exn "let twice = map double . map double\nlet main = twice . map incr"
  in
  let v = Ast.eval (List.assoc "main" defs) (value_of_list [ 1 ]) in
  Alcotest.(check (array int)) "(1+1)*4" [| 8 |] (Value.to_int_array v)

let test_program_reference_in_iter () =
  let defs =
    Parser.parse_program_exn "let step = rotate 1\nlet main = iter 3 [ step ]"
  in
  let v = Ast.eval (List.assoc "main" defs) (value_of_list [ 0; 1; 2; 3 ]) in
  Alcotest.(check (array int)) "three rotations" [| 3; 0; 1; 2 |] (Value.to_int_array v)

let test_program_errors () =
  let bad src = match Parser.parse_program src with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "forward reference" true (bad "let main = helper\nlet helper = id");
  Alcotest.(check bool) "duplicate definition" true (bad "let a = id\nlet a = id");
  Alcotest.(check bool) "keyword name" true (bad "let map = id");
  Alcotest.(check bool) "missing equals" true (bad "let a id");
  Alcotest.(check bool) "no let" true (bad "map incr");
  Alcotest.(check bool) "empty" true (bad "")

let test_program_optimizes_across_references () =
  let defs =
    Parser.parse_program_exn "let a = rotate 2\nlet b = rotate 3\nlet main = a . b"
  in
  let e', _ = Rewrite.normalize (List.assoc "main" defs) in
  Alcotest.(check string) "fused across definitions" "rotate 5" (Ast.to_string e')

(* --- codegen -------------------------------------------------------------------- *)

let test_codegen_golden () =
  (* The checked-in generated example must be exactly what Codegen emits
     today (and it is compiled by dune, proving the emitted code is valid
     OCaml). *)
  let src = "fold add . map square . rotate 3 . iter 2 [ map incr ] . fetch reverse" in
  let e = Parser.parse_exn src in
  let generated = Codegen.generate ~name:"run_pipeline" e in
  let path =
    (* dune runtest runs in _build/default/test; dune exec runs in the
       project root *)
    List.find Sys.file_exists
      [
        "../examples/generated/generated_pipeline.ml";
        "examples/generated/generated_pipeline.ml";
        "_build/default/examples/generated/generated_pipeline.ml";
      ]
  in
  let checked_in =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  Alcotest.(check string) "regeneration is byte-identical" checked_in generated

let test_codegen_host_golden () =
  let src = "fold add . map square . rotate 3 . iter 2 [ map incr ] . fetch reverse" in
  let e = Parser.parse_exn src in
  let generated = Codegen.generate_host ~name:"run_pipeline" e in
  let path =
    List.find Sys.file_exists
      [
        "../examples/generated/generated_pipeline_host.ml";
        "examples/generated/generated_pipeline_host.ml";
        "_build/default/examples/generated/generated_pipeline_host.ml";
      ]
  in
  let checked_in =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  Alcotest.(check string) "host regeneration is byte-identical" checked_in generated

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let seg_pipeline_src = "fold add . combine . mapn [ map square . map incr ] . split 4"

let test_codegen_seg_golden () =
  (* The nested golden pair: a segmented pipeline compiled as-is. It is
     also compiled by dune (examples/generated), proving the emitted
     segmented code is valid OCaml. *)
  let e = Parser.parse_exn seg_pipeline_src in
  let generated = Codegen.generate ~name:"run_pipeline_seg" e in
  let path =
    List.find Sys.file_exists
      [
        "../examples/generated/generated_pipeline_seg.ml";
        "examples/generated/generated_pipeline_seg.ml";
        "_build/default/examples/generated/generated_pipeline_seg.ml";
      ]
  in
  Alcotest.(check string) "seg regeneration is byte-identical" (read_file path) generated

let test_codegen_seg_host_golden () =
  let e = Parser.parse_exn seg_pipeline_src in
  let generated = Codegen.generate_host ~name:"run_pipeline_seg" e in
  let path =
    List.find Sys.file_exists
      [
        "../examples/generated/generated_pipeline_seg_host.ml";
        "examples/generated/generated_pipeline_seg_host.ml";
        "_build/default/examples/generated/generated_pipeline_seg_host.ml";
      ]
  in
  Alcotest.(check string) "seg host regeneration is byte-identical" (read_file path) generated

let prop_host_codegen_source_wellformed =
  qtest ~count:100 "host codegen emits for every compilable pipeline"
    (QCheck.make ~print:Ast.to_string gen_parseable)
    (fun e ->
      let chain =
        List.filter
          (function
            | Ast.Split _ | Ast.Combine | Ast.Map_nested _ | Ast.Fold _ | Ast.Foldr_compose _
              ->
                false
            | _ -> true)
          (Ast.to_chain e)
      in
      match Codegen.generate_host (Ast.of_chain chain) with
      | (_ : string) -> true
      | exception Codegen.Not_compilable _ -> false)

let test_codegen_rejects_foldr () =
  Alcotest.(check bool) "foldr not compilable" true
    (not (Codegen.compilable (Ast.Foldr_compose (Fn.add, Fn.square))));
  let rewritten, _ = Rewrite.normalize (Ast.Foldr_compose (Fn.add, Fn.square)) in
  Alcotest.(check bool) "compilable after map distribution" true (Codegen.compilable rewritten)

let test_codegen_compiles_segmented () =
  (* split .. mapn [maps] .. combine now compiles directly: the segmented
     region emits the flat maps (the flattening rules' insight, in the
     emitted code). Flattening it first must of course stay compilable. *)
  let nested = Ast.of_chain [ Ast.Split 4; Ast.Map_nested (Ast.Map Fn.incr); Ast.Combine ] in
  Alcotest.(check bool) "mapn of maps compilable" true (Codegen.compilable nested);
  let flat, _ = Rewrite.normalize nested in
  Alcotest.(check bool) "still compilable after flattening" true (Codegen.compilable flat);
  (* both targets actually emit source for the nested form *)
  Alcotest.(check bool) "sim target emits" true (String.length (Codegen.generate nested) > 0);
  Alcotest.(check bool) "host target emits" true
    (String.length (Codegen.generate_host nested) > 0)

let test_codegen_rejects_unflattened_fold () =
  (* A fold body inside a segmented region is not compilable until
     nested_fold_flatten has rewritten it away. *)
  let nested =
    Ast.of_chain [ Ast.Split 4; Ast.Map_nested (Ast.Fold Fn.add); Ast.Fold Fn.add ]
  in
  Alcotest.(check bool) "mapn of fold not compilable" true (not (Codegen.compilable nested));
  let flat, _ = Rewrite.normalize nested in
  Alcotest.(check bool) "compilable after nested_fold_flatten" true (Codegen.compilable flat);
  Alcotest.(check string) "flattened to the flat fold" "fold add" (Ast.to_string flat);
  (* a split that never combines is also rejected *)
  Alcotest.(check bool) "unterminated segment rejected" true
    (not (Codegen.compilable (Ast.Split 2)))

let test_codegen_rejects_mid_fold () =
  let e = Ast.of_chain [ Ast.Fold Fn.add; Ast.Map Fn.incr ] in
  Alcotest.(check bool) "fold must be last" true (not (Codegen.compilable e))

(* --- flat host target ----------------------------------------------------- *)

let flat_pipeline_src = "fold fadd . map fdouble . scan fadd . map fhalve . map fincr"

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_codegen_flat_golden () =
  let e = Parser.parse_exn flat_pipeline_src in
  let generated = Codegen.generate_host_flat ~name:"run_pipeline_flat" e in
  let path =
    List.find Sys.file_exists
      [
        "../examples/generated/generated_pipeline_flat.ml";
        "examples/generated/generated_pipeline_flat.ml";
        "_build/default/examples/generated/generated_pipeline_flat.ml";
      ]
  in
  Alcotest.(check string) "flat regeneration is byte-identical" (read_file path) generated;
  (* the golden fuses: trailing map into the scan, next into the fold *)
  Alcotest.(check bool) "fmap_scan emitted" true
    (contains_substring generated "fmap_scan (Scl.Flat_exec.Scale 0.5) Scl.Flat_exec.Add");
  Alcotest.(check bool) "fmap_fold emitted" true
    (contains_substring generated "fmap_fold (Scl.Flat_exec.Scale 2.0) Scl.Flat_exec.Add")

let test_codegen_flat_rejects () =
  let flat_ok e =
    match Codegen.generate_host_flat e with
    | (_ : string) -> true
    | exception Codegen.Not_compilable _ -> false
  in
  (* only the float registry vocabulary compiles *)
  Alcotest.(check bool) "int map rejected" false (flat_ok (Ast.Map Fn.incr));
  Alcotest.(check bool) "int fold rejected" false (flat_ok (Ast.Fold Fn.add));
  Alcotest.(check bool) "rotate rejected" false (flat_ok (Ast.Rotate 2));
  Alcotest.(check bool) "mid-pipeline fold rejected" false
    (flat_ok (Ast.of_chain [ Ast.Fold Fn.fadd; Ast.Map Fn.fincr ]));
  Alcotest.(check bool) "float chain accepted" true
    (flat_ok (Parser.parse_exn flat_pipeline_src))

(* The Host_exec flat fast path (seq and pool fx backends) must be
   bitwise-identical to the reference interpreter on dyadic float data. *)
let test_host_flat_bitwise () =
  let e = Parser.parse_exn flat_pipeline_src in
  let scan_e = Parser.parse_exn "scan fadd . map fdouble . map fneg" in
  let data = Array.init 1003 (fun i -> float_of_int ((i * 37 mod 512) - 256) *. 0.25) in
  let v = Value.Arr (Array.map (fun x -> Value.Float x) data) in
  let check_pipeline label e =
    let expected = Ast.eval e v in
    let seq = Host_exec.eval e v in
    Alcotest.(check bool) (label ^ ": flat seq = reference") true (Value.equal expected seq);
    let pool = Runtime.Pool.create ~num_domains:2 () in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.teardown pool)
      (fun () ->
        let got =
          Host_exec.eval ~exec:(Scl.Exec.on_pool pool) ~fx:(Scl.Flat_exec.on_pool pool) e v
        in
        Alcotest.(check bool) (label ^ ": flat pool = reference") true (Value.equal expected got))
  in
  check_pipeline "fold pipeline" e;
  check_pipeline "scan pipeline" scan_e;
  (* edge sizes through the flat dispatch, including empty scans *)
  List.iter
    (fun n ->
      let v = Value.Arr (Array.init n (fun i -> Value.Float (float_of_int i))) in
      Alcotest.(check bool)
        (Printf.sprintf "scan pipeline n=%d" n)
        true
        (Value.equal (Ast.eval scan_e v) (Host_exec.eval scan_e v)))
    [ 0; 1; 2; 3; 7 ]

let test_cost_flat_discount () =
  let float_e = Parser.parse_exn "fold fadd . scan fadd . map fdouble" in
  let int_e = Parser.parse_exn "fold add . scan add . map double" in
  let plain = Cost.estimate_pipeline ~procs:8 ~n:65536 float_e in
  let flat = Cost.estimate_pipeline ~flat:true ~procs:8 ~n:65536 float_e in
  Alcotest.(check bool) "flat pricing is strictly cheaper on float legs" true (flat < plain);
  Alcotest.(check (float 0.0)) "int legs are never discounted"
    (Cost.estimate_pipeline ~procs:8 ~n:65536 int_e)
    (Cost.estimate_pipeline ~flat:true ~procs:8 ~n:65536 int_e);
  (* the optimizer accepts and threads the flag *)
  let r = Optimizer.optimize ~flat:true float_e in
  Alcotest.(check bool) "optimize ~flat:true runs" true (r.Optimizer.cost_after <= r.Optimizer.cost_before)

let test_parse_float_registry () =
  Alcotest.(check string) "float pipeline round-trips" flat_pipeline_src
    (Ast.to_string (Parser.parse_exn flat_pipeline_src))

let prop_codegen_accepts_flat_pipelines =
  qtest ~count:100 "every flat registry pipeline is compilable"
    (QCheck.make ~print:Ast.to_string gen_parseable)
    (fun e ->
      (* strip mid-pipeline folds and free-standing nesting stages for this
         property: the parseable generator emits split/combine/mapn in
         arbitrary positions, and codegen only accepts the disciplined
         split .. mapn [maps] .. combine shape — so filter to the flat
         compilable subset *)
      let chain =
        List.filter
          (function
            | Ast.Split _ | Ast.Combine | Ast.Map_nested _ | Ast.Fold _ | Ast.Foldr_compose _
              ->
                false
            | _ -> true)
          (Ast.to_chain e)
      in
      Codegen.compilable (Ast.of_chain chain))

(* --- chain / printing round trips (on the lib/prop engine) ----------------- *)

(* Random expression *trees* — arbitrary Compose shapes with explicit Ids
   and nested Map_nested bodies — exercising exactly what to_chain must
   normalise away. *)
let rec gen_tree depth : Ast.expr Prop.Gen.t =
  let open Prop.Gen in
  if depth <= 0 then frequency [ (1, return Ast.Id); (4, Prop.Pipe_gen.gen_lp_stage) ]
  else
    frequency
      [
        ( 3,
          let* l = gen_tree (depth - 1) in
          let+ r = gen_tree (depth - 1) in
          Ast.Compose (l, r) );
        (1, map (fun e -> Ast.Map_nested e) (gen_tree (depth - 1)));
        (1, return Ast.Id);
        (3, Prop.Pipe_gen.gen_lp_stage);
      ]

(* Same, without Map_nested: length-preserving on flat arrays, so eval
   round trips can run on random inputs. *)
let rec gen_flat_tree depth : Ast.expr Prop.Gen.t =
  let open Prop.Gen in
  if depth <= 0 then frequency [ (1, return Ast.Id); (4, Prop.Pipe_gen.gen_lp_stage) ]
  else
    frequency
      [
        ( 3,
          let* l = gen_flat_tree (depth - 1) in
          let+ r = gen_flat_tree (depth - 1) in
          Ast.Compose (l, r) );
        (1, return Ast.Id);
        (3, Prop.Pipe_gen.gen_lp_stage);
      ]

let prop_run ?(count = 200) name gen prop =
  match
    Prop.Runner.check ~config:{ Prop.Runner.default with count; seed = 42 } ~gen ~prop ()
  with
  | Prop.Runner.Pass _ -> ()
  | Prop.Runner.Fail f -> Alcotest.fail (name ^ ": " ^ f.Prop.Runner.message)
  | Prop.Runner.Gave_up _ -> Alcotest.fail (name ^ ": gave up")

let stage_strings chain = List.map Ast.to_string chain

let test_chain_roundtrip_prop () =
  prop_run "to_chain . of_chain stable"
    (Prop.Gen.bind (Prop.Gen.int_range 0 4) gen_tree)
    (fun e ->
      let c = Ast.to_chain e in
      let c' = Ast.to_chain (Ast.of_chain c) in
      if stage_strings c = stage_strings c' then Prop.Runner.Pass_case
      else
        Prop.Runner.Fail_case
          (Printf.sprintf "chain changed: [%s] vs [%s] (tree %s)"
             (String.concat "; " (stage_strings c))
             (String.concat "; " (stage_strings c'))
             (Ast.to_string e)))

let test_chain_drops_ids () =
  prop_run "to_chain drops Id and flattens Compose"
    (Prop.Gen.bind (Prop.Gen.int_range 0 4) gen_tree)
    (fun e ->
      let ok = function Ast.Id | Ast.Compose _ -> false | _ -> true in
      if List.for_all ok (Ast.to_chain e) then Prop.Runner.Pass_case
      else Prop.Runner.Fail_case ("Id or Compose in chain of " ^ Ast.to_string e))

let test_chain_roundtrip_eval () =
  let gen =
    let open Prop.Gen in
    let* e = bind (int_range 0 4) gen_flat_tree in
    let* n = int_range 1 20 in
    let+ input = Prop.Pipe_gen.gen_input ~n in
    (e, input)
  in
  prop_run "of_chain . to_chain preserves meaning" gen (fun (e, v) ->
      let e' = Ast.of_chain (Ast.to_chain e) in
      if Value.equal (Ast.eval e v) (Ast.eval e' v) then Prop.Runner.Pass_case
      else Prop.Runner.Fail_case (Ast.to_string e ^ " <> normalised " ^ Ast.to_string e'))

let test_to_string_stable () =
  prop_run "to_string total and normalisation-idempotent"
    (Prop.Gen.bind (Prop.Gen.int_range 0 4) gen_tree)
    (fun e ->
      let norm = Ast.of_chain (Ast.to_chain e) in
      let norm2 = Ast.of_chain (Ast.to_chain norm) in
      if String.length (Ast.to_string e) > 0 && Ast.to_string norm = Ast.to_string norm2 then
        Prop.Runner.Pass_case
      else Prop.Runner.Fail_case ("printing unstable for " ^ Ast.to_string e))

let test_nested_map_chain_roundtrip () =
  (* deep Map_nested towers keep their body structure through the chain view *)
  prop_run "nested bodies survive round trip"
    (let open Prop.Gen in
     let* depth = int_range 1 3 in
     let+ body = gen_tree depth in
     Ast.Map_nested (Ast.Map_nested body))
    (fun e ->
      match Ast.to_chain e with
      | [ Ast.Map_nested _ ] as c ->
          if stage_strings c = stage_strings (Ast.to_chain (Ast.of_chain c)) then
            Prop.Runner.Pass_case
          else Prop.Runner.Fail_case ("nested chain changed for " ^ Ast.to_string e)
      | c ->
          Prop.Runner.Fail_case
            (Printf.sprintf "expected singleton chain, got %d stages" (List.length c)))

let () =
  Alcotest.run "transform"
    [
      ( "interpreter",
        [
          Alcotest.test_case "map" `Quick test_eval_map;
          Alcotest.test_case "compose order" `Quick test_eval_compose_order;
          Alcotest.test_case "fold/scan" `Quick test_eval_fold_scan;
          Alcotest.test_case "foldr_compose" `Quick test_eval_foldr_compose;
          Alcotest.test_case "foldr right-assoc" `Quick test_eval_foldr_non_assoc;
          Alcotest.test_case "communication" `Quick test_eval_communication;
          Alcotest.test_case "split/combine" `Quick test_eval_split_combine;
          Alcotest.test_case "iter_for" `Quick test_eval_iter_for;
          Alcotest.test_case "type errors" `Quick test_eval_type_errors;
          Alcotest.test_case "chain roundtrip" `Quick test_chain_roundtrip;
        ] );
      ( "chain-roundtrip-prop",
        [
          Alcotest.test_case "to_chain/of_chain stable" `Quick test_chain_roundtrip_prop;
          Alcotest.test_case "Id-dropping" `Quick test_chain_drops_ids;
          Alcotest.test_case "eval-preserving" `Quick test_chain_roundtrip_eval;
          Alcotest.test_case "to_string stable" `Quick test_to_string_stable;
          Alcotest.test_case "nested Map_nested chains" `Quick test_nested_map_chain_roundtrip;
        ] );
      ( "rules",
        [
          prop_map_fusion_sound;
          Alcotest.test_case "map fusion fires" `Quick test_map_fusion_fires;
          prop_map_distribution_sound;
          Alcotest.test_case "map distribution fires" `Quick test_map_distribution_fires;
          Alcotest.test_case "associativity guard" `Quick test_map_distribution_respects_associativity;
          prop_send_fusion_sound;
          prop_fetch_fusion_sound;
          prop_fetch_fusion_with_reverse;
          prop_rotate_fusion_sound;
          Alcotest.test_case "rotate fusion" `Quick test_rotate_fusion_result;
          prop_rotate_fetch_fusion_sound;
          Alcotest.test_case "rotate/fetch fuse" `Quick test_rotate_fetch_fuses;
          Alcotest.test_case "rotate cancellation" `Quick test_rotate_cancellation;
          Alcotest.test_case "identity elimination" `Quick test_identity_elim;
          Alcotest.test_case "split/combine elimination" `Quick test_split_combine_elim;
          prop_nested_map_flatten_sound;
          Alcotest.test_case "flattening(map) fires" `Quick test_nested_map_flatten_fires;
          prop_nested_fold_flatten_sound;
          Alcotest.test_case "flattening(fold) fires" `Quick test_nested_fold_flatten_fires;
          prop_iter_unroll_sound;
          Alcotest.test_case "iterFor unroll + fusion" `Quick test_iter_unroll_fuses_rotations;
        ] );
      ( "engine",
        [
          prop_normalize_preserves_semantics;
          prop_normalize_idempotent;
          prop_normalize_never_grows;
        ] );
      ( "cost",
        [
          Alcotest.test_case "fusion improves" `Quick test_cost_fusion_improves;
          Alcotest.test_case "map distribution improves" `Quick test_cost_map_distribution_improves;
          Alcotest.test_case "monotone in n" `Quick test_cost_monotone_in_n;
          Alcotest.test_case "optimizer report" `Quick test_optimizer_report;
        ] );
      ( "sim_exec",
        [
          prop_sim_exec_matches_interpreter;
          Alcotest.test_case "optimized faster on simulator" `Quick test_sim_exec_optimized_is_faster;
          Alcotest.test_case "segmented execution" `Quick test_sim_exec_segmented;
          Alcotest.test_case "segmented fold" `Quick test_sim_exec_segmented_fold;
          Alcotest.test_case "deeper nesting rejected" `Quick test_sim_exec_rejects_deeper_nesting;
          Alcotest.test_case "nested cross-backend" `Quick test_nested_cross_backend;
        ] );
      ( "search",
        [
          Alcotest.test_case "beam beats stalled greedy" `Quick test_search_beats_greedy_on_commuting;
          Alcotest.test_case "makespan within tolerance" `Quick test_search_makespan_not_worse;
          prop_search_never_worse_than_greedy;
          prop_search_sound;
          prop_optimize_idempotent;
        ] );
      ( "commuting",
        [
          prop_commute_sound;
          Alcotest.test_case "enables fusion" `Quick test_commute_enables_fusion;
          Alcotest.test_case "terminates / idempotent" `Quick test_commute_terminates_and_idempotent;
          Alcotest.test_case "maps gathered" `Quick test_commute_moves_all_maps_front;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "application order" `Quick test_parse_apply_order;
          Alcotest.test_case "nested" `Quick test_parse_nested;
          Alcotest.test_case "iter" `Quick test_parse_iter;
          Alcotest.test_case "foldr" `Quick test_parse_foldr;
          Alcotest.test_case "shift" `Quick test_parse_shift;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_parse_error_position;
          Alcotest.test_case "nested print/parse regression" `Quick
            test_print_parse_nested_regression;
          prop_parse_roundtrip;
          Alcotest.test_case "fused not printable" `Quick test_to_source_rejects_fused;
        ] );
      ( "robustness",
        [
          prop_parser_never_crashes;
          prop_program_parser_never_crashes;
          prop_cost_additive_over_compose;
          prop_optimizer_never_worse;
        ] );
      ( "programs",
        [
          Alcotest.test_case "basic" `Quick test_program_basic;
          Alcotest.test_case "semantics" `Quick test_program_semantics;
          Alcotest.test_case "reference in iter" `Quick test_program_reference_in_iter;
          Alcotest.test_case "errors" `Quick test_program_errors;
          Alcotest.test_case "optimizes across references" `Quick test_program_optimizes_across_references;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "golden file" `Quick test_codegen_golden;
          Alcotest.test_case "host golden file" `Quick test_codegen_host_golden;
          Alcotest.test_case "segmented golden file" `Quick test_codegen_seg_golden;
          Alcotest.test_case "segmented host golden file" `Quick test_codegen_seg_host_golden;
          prop_host_codegen_source_wellformed;
          Alcotest.test_case "foldr rejected until rewritten" `Quick test_codegen_rejects_foldr;
          Alcotest.test_case "segmented region compiles" `Quick test_codegen_compiles_segmented;
          Alcotest.test_case "fold body rejected until flattened" `Quick
            test_codegen_rejects_unflattened_fold;
          Alcotest.test_case "fold must be last" `Quick test_codegen_rejects_mid_fold;
          prop_codegen_accepts_flat_pipelines;
        ] );
      ( "flat host tier",
        [
          Alcotest.test_case "flat golden file" `Quick test_codegen_flat_golden;
          Alcotest.test_case "flat target vocabulary" `Quick test_codegen_flat_rejects;
          Alcotest.test_case "host flat fast path bitwise" `Quick test_host_flat_bitwise;
          Alcotest.test_case "cost model flat discount" `Quick test_cost_flat_discount;
          Alcotest.test_case "parser float registry" `Quick test_parse_float_registry;
        ] );
    ]
