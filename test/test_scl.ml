(* Tests for the SCL core library: ParArrays, partitions, configurations,
   elementary / communication / computational skeletons, on both the
   sequential and the pool backends. *)

open Scl

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let int_par = Alcotest.testable (Par_array.pp Fmt.int) (Par_array.equal ( = ))

(* A pool shared by the whole suite (spawning domains per test is slow). *)
let pool = lazy (Runtime.Pool.create ~num_domains:3 ())
let pexec = lazy (Exec.on_pool (Lazy.force pool))

let both_execs f () =
  f Exec.sequential;
  f (Lazy.force pexec)

(* --- Par_array ------------------------------------------------------------ *)

let test_par_array_basics () =
  let pa = Par_array.init 5 (fun i -> i * i) in
  Alcotest.(check int) "length" 5 (Par_array.length pa);
  Alcotest.(check int) "get" 9 (Par_array.get pa 3);
  let pa' = Par_array.set pa 0 42 in
  Alcotest.(check int) "set is functional" 0 (Par_array.get pa 0);
  Alcotest.(check int) "set" 42 (Par_array.get pa' 0)

let test_par_array_bounds () =
  let pa = Par_array.init 3 Fun.id in
  Alcotest.(check bool) "get oob raises" true
    (try
       ignore (Par_array.get pa 3);
       false
     with Invalid_argument _ -> true)

let test_par_array_of_array_copies () =
  let a = [| 1; 2; 3 |] in
  let pa = Par_array.of_array a in
  a.(0) <- 99;
  Alcotest.(check int) "insulated from mutation" 1 (Par_array.get pa 0)

let test_par_array_concat_sub () =
  let a = Par_array.of_list [ 1; 2 ] and b = Par_array.of_list [ 3 ] in
  let c = Par_array.concat [ a; b ] in
  Alcotest.(check (list int)) "concat" [ 1; 2; 3 ] (Par_array.to_list c);
  Alcotest.(check (list int)) "sub" [ 2; 3 ] (Par_array.to_list (Par_array.sub c ~pos:1 ~len:2))

let test_par_array_sub_view () =
  let pa = Par_array.init 6 Fun.id in
  let v = Par_array.sub_view pa ~pos:2 ~len:3 in
  Alcotest.(check (list int)) "view contents" [ 2; 3; 4 ] (Par_array.to_list v);
  Alcotest.(check bool) "view = copying sub" true
    (Par_array.equal ( = ) v (Par_array.sub pa ~pos:2 ~len:3));
  let vv = Par_array.sub_view v ~pos:1 ~len:2 in
  Alcotest.(check (list int)) "view of a view" [ 3; 4 ] (Par_array.to_list vv);
  Alcotest.(check bool) "oob view rejected" true
    (try
       ignore (Par_array.sub_view pa ~pos:4 ~len:3);
       false
     with Invalid_argument _ -> true)

(* --- Partition -------------------------------------------------------------- *)

let patterns_for n =
  [
    Partition.Block 1;
    Partition.Block 3;
    Partition.Block 7;
    Partition.Cyclic 3;
    Partition.Cyclic 5;
    Partition.Block_cyclic { parts = 3; block = 2 };
    Partition.Custom { parts = 4; name = "mod-ish"; assign = (fun i -> i * i mod 4) };
  ]
  |> List.filter (fun p -> Partition.parts p <= max 1 n || true)

let prop_partition_roundtrip =
  qtest "unapply (apply pat a) = a for every pattern"
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      List.for_all
        (fun pat -> Partition.unapply pat (Partition.apply pat a) = a)
        (patterns_for (Array.length a)))

let test_partition_block_sizes () =
  let sizes = Partition.part_sizes (Partition.Block 4) ~n:10 in
  Alcotest.(check (array int)) "balanced" [| 3; 3; 2; 2 |] sizes

let test_partition_block_contents () =
  let pieces = Partition.apply (Partition.Block 3) [| 0; 1; 2; 3; 4; 5; 6 |] in
  Alcotest.(check (array int)) "part 0" [| 0; 1; 2 |] (Par_array.get pieces 0);
  Alcotest.(check (array int)) "part 1" [| 3; 4 |] (Par_array.get pieces 1);
  Alcotest.(check (array int)) "part 2" [| 5; 6 |] (Par_array.get pieces 2)

let test_partition_cyclic_contents () =
  let pieces = Partition.apply (Partition.Cyclic 3) [| 0; 1; 2; 3; 4; 5; 6 |] in
  Alcotest.(check (array int)) "part 0" [| 0; 3; 6 |] (Par_array.get pieces 0);
  Alcotest.(check (array int)) "part 1" [| 1; 4 |] (Par_array.get pieces 1)

let test_partition_block_cyclic () =
  let pat = Partition.Block_cyclic { parts = 2; block = 2 } in
  let pieces = Partition.apply pat [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  Alcotest.(check (array int)) "part 0" [| 0; 1; 4; 5 |] (Par_array.get pieces 0);
  Alcotest.(check (array int)) "part 1" [| 2; 3; 6; 7 |] (Par_array.get pieces 1)

let test_partition_more_parts_than_elements () =
  let pieces = Partition.apply (Partition.Block 5) [| 1; 2 |] in
  Alcotest.(check int) "five parts" 5 (Par_array.length pieces);
  Alcotest.(check (array int)) "roundtrip" [| 1; 2 |]
    (Partition.unapply (Partition.Block 5) pieces)

let test_partition_invalid () =
  Alcotest.(check bool) "0 parts rejected" true
    (try
       ignore (Partition.apply (Partition.Block 0) [| 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad custom assign rejected" true
    (try
       ignore
         (Partition.apply (Partition.Custom { parts = 2; name = "bad"; assign = (fun _ -> 7) }) [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_partition_unapply_inconsistent () =
  let pieces = Par_array.of_list [ [| 1 |]; [| 2; 3; 4 |] ] in
  Alcotest.(check bool) "inconsistent sizes rejected" true
    (try
       ignore (Partition.unapply (Partition.Cyclic 2) pieces);
       false
     with Invalid_argument _ -> true)

(* The specialised apply/unapply fast paths must agree with the generic
   assign-driven implementation (the executable specification) on every
   pattern and length, including empty arrays and n < parts. *)
let prop_partition_fastpath =
  qtest "fast-path apply/unapply = generic"
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      List.for_all
        (fun pat ->
          let fast = Partition.apply pat a and generic = Partition.apply_generic pat a in
          Par_array.equal ( = ) fast generic
          && Partition.unapply pat generic = a
          && Partition.unapply_generic pat fast = a)
        (patterns_for (Array.length a)))

let test_partition_fastpath_small_sizes () =
  let pats =
    [
      Partition.Block 7;
      Partition.Cyclic 7;
      Partition.Block_cyclic { parts = 7; block = 2 };
      Partition.Block_cyclic { parts = 3; block = 3 };
    ]
  in
  for n = 0 to 6 do
    let a = Array.init n (fun i -> (i * 3) + 1) in
    List.iter
      (fun pat ->
        let who = Printf.sprintf "%s n=%d" (Partition.name pat) n in
        let fast = Partition.apply pat a and generic = Partition.apply_generic pat a in
        Alcotest.(check bool) (who ^ " apply") true (Par_array.equal ( = ) fast generic);
        Alcotest.(check (array int)) (who ^ " unapply") a (Partition.unapply pat fast))
      pats
  done

let prop_split_combine =
  qtest "combine (split p x) = x (block patterns)"
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (xs, p) ->
      let pa = Par_array.of_list xs in
      Par_array.equal ( = ) (Partition.combine (Partition.split (Partition.Block p) pa)) pa)

(* --- Partition2 -------------------------------------------------------------- *)

let mk_matrix r c = Par_array2.init ~rows:r ~cols:c (fun i j -> (i * 100) + j)

let prop_partition2_roundtrip =
  qtest ~count:100 "2-D unapply (apply pat m) = m"
    QCheck.(triple (int_range 0 9) (int_range 0 9) (int_range 0 4))
    (fun (r, c, which) ->
      let pat =
        match which with
        | 0 -> Partition2.row_block 3
        | 1 -> Partition2.col_block 2
        | 2 -> Partition2.row_col_block 2 3
        | 3 -> Partition2.row_cyclic 2
        | _ -> Partition2.col_cyclic 3
      in
      let m = mk_matrix r c in
      Par_array2.equal ( = ) (Partition2.unapply pat (Partition2.apply pat m)) m)

let test_partition2_row_block_shape () =
  let m = mk_matrix 4 6 in
  let grid = Partition2.apply (Partition2.row_block 2) m in
  Alcotest.(check (pair int int)) "grid" (2, 1) (Par_array2.dims grid);
  let piece = Par_array2.get grid 0 0 in
  Alcotest.(check (pair int int)) "piece" (2, 6) (Par_array2.dims piece)

let test_partition2_row_col_block_shape () =
  let m = mk_matrix 4 4 in
  let grid = Partition2.apply (Partition2.row_col_block 2 2) m in
  Alcotest.(check (pair int int)) "grid" (2, 2) (Par_array2.dims grid);
  Alcotest.(check int) "corner element" 202 (Par_array2.get (Par_array2.get grid 1 1) 0 0)

(* --- Par_array2 skeletons ------------------------------------------------- *)

let test_par_array2_imap_fold () =
  let m = Par_array2.init ~rows:3 ~cols:4 (fun i j -> i + j) in
  let m2 = Par_array2.imap (fun i j v -> v + (i * 10) + j) m in
  Alcotest.(check int) "imap" (2 + 3 + 20 + 3) (Par_array2.get m2 2 3);
  Alcotest.(check int) "fold sum" 30 (Par_array2.fold ( + ) m)

let test_par_array2_transpose () =
  let m = mk_matrix 2 3 in
  let t = Par_array2.transpose m in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Par_array2.dims t);
  Alcotest.(check int) "value" 102 (Par_array2.get t 2 1)

let test_rotate_row () =
  let m = mk_matrix 2 4 in
  (* row i rotated left by i *)
  let r = Par_array2.rotate_row (fun i -> i) m in
  Alcotest.(check (array int)) "row 0 unchanged" [| 0; 1; 2; 3 |] (Par_array2.row r 0);
  Alcotest.(check (array int)) "row 1 left by 1" [| 101; 102; 103; 100 |] (Par_array2.row r 1)

let test_rotate_col () =
  let m = mk_matrix 4 2 in
  let r = Par_array2.rotate_col (fun j -> j) m in
  Alcotest.(check (array int)) "col 0 unchanged" [| 0; 100; 200; 300 |] (Par_array2.col r 0);
  Alcotest.(check (array int)) "col 1 up by 1" [| 101; 201; 301; 1 |] (Par_array2.col r 1)

let prop_rotate_row_inverse =
  qtest ~count:100 "rotate_row df then -df = id"
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range (-5) 5))
    (fun (r, c, k) ->
      let m = mk_matrix r c in
      let df i = (i * k) mod 7 in
      Par_array2.equal ( = )
        (Par_array2.rotate_row (fun i -> -df i) (Par_array2.rotate_row df m))
        m)

(* --- Config ------------------------------------------------------------------ *)

let test_align_unalign () =
  let a = Par_array.of_list [ 1; 2; 3 ] and b = Par_array.of_list [ "x"; "y"; "z" ] in
  let ab = Config.align a b in
  Alcotest.(check (pair int string)) "pairing" (2, "y") (Par_array.get ab 1);
  let a', b' = Config.unalign ab in
  Alcotest.check int_par "left back" a a';
  Alcotest.(check (list string)) "right back" [ "x"; "y"; "z" ] (Par_array.to_list b')

let test_align_mismatch () =
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Config.align (Par_array.of_list [ 1 ]) (Par_array.of_list [ 1; 2 ]));
       false
     with Invalid_argument _ -> true)

let test_distribution2 () =
  let conf =
    Config.distribution2 ~move1:Fun.id ~pat1:(Partition.Block 2) ~move2:Fun.id
      ~pat2:(Partition.Cyclic 2) [| 1; 2; 3; 4 |] [| 10; 20; 30; 40 |]
  in
  Alcotest.(check int) "two tuples" 2 (Par_array.length conf);
  let a0, b0 = Par_array.get conf 0 in
  Alcotest.(check (array int)) "block part" [| 1; 2 |] a0;
  Alcotest.(check (array int)) "cyclic part" [| 10; 30 |] b0

let test_distribution2_with_movement () =
  (* A bulk movement (rotate) applied as part of the distribution. *)
  let conf =
    Config.distribution2
      ~move1:(fun da -> Communication.rotate 1 da)
      ~pat1:(Partition.Block 2) ~move2:Fun.id ~pat2:(Partition.Block 2) [| 1; 2; 3; 4 |]
      [| 10; 20; 30; 40 |]
  in
  let a0, _ = Par_array.get conf 0 in
  Alcotest.(check (array int)) "rotated pieces" [| 3; 4 |] a0

let test_redistribution () =
  let da = Par_array.of_list [ 1; 2 ] and db = Par_array.of_list [ 3; 4 ] in
  let da', db' =
    Config.redistribution2 (Communication.rotate 1, Communication.rotate (-1)) (da, db)
  in
  Alcotest.(check (list int)) "left rotated" [ 2; 1 ] (Par_array.to_list da');
  Alcotest.(check (list int)) "right rotated" [ 4; 3 ] (Par_array.to_list db')

let test_gather_is_partition_inverse () =
  let a = Array.init 13 Fun.id in
  let pat = Partition.Cyclic 4 in
  Alcotest.(check (array int)) "gather" a (Config.gather pat (Partition.apply pat a))

(* --- Elementary --------------------------------------------------------------- *)

let test_map_both = both_execs (fun exec ->
    let pa = Par_array.init 100 Fun.id in
    let r = Elementary.map ~exec (fun x -> x * 2) pa in
    Alcotest.(check bool) (exec.Exec.name ^ " map") true
      (Par_array.equal ( = ) r (Par_array.init 100 (fun i -> 2 * i))))

let test_imap_both = both_execs (fun exec ->
    let pa = Par_array.make 10 5 in
    let r = Elementary.imap ~exec (fun i x -> i * x) pa in
    Alcotest.(check bool) (exec.Exec.name ^ " imap") true
      (Par_array.equal ( = ) r (Par_array.init 10 (fun i -> 5 * i))))

let test_fold_both = both_execs (fun exec ->
    let pa = Par_array.init 1000 (fun i -> i + 1) in
    Alcotest.(check int) (exec.Exec.name ^ " fold") 500500 (Elementary.fold ~exec ( + ) pa))

let test_fold_non_commutative = both_execs (fun exec ->
    (* String concatenation: checks combination order. *)
    let pa = Par_array.init 50 string_of_int in
    let expect = String.concat "" (List.init 50 string_of_int) in
    Alcotest.(check string) (exec.Exec.name ^ " ordered fold") expect
      (Elementary.fold ~exec ( ^ ) pa))

let test_fold_empty () =
  Alcotest.(check bool) "empty fold raises" true
    (try
       ignore (Elementary.fold ( + ) (Par_array.of_array [||]));
       false
     with Invalid_argument _ -> true)

let test_scan_both = both_execs (fun exec ->
    let pa = Par_array.init 100 (fun i -> i + 1) in
    let r = Elementary.scan ~exec ( + ) pa in
    let expect = Par_array.init 100 (fun i -> (i + 1) * (i + 2) / 2) in
    Alcotest.(check bool) (exec.Exec.name ^ " scan") true (Par_array.equal ( = ) r expect))

let prop_scan_matches_seq =
  qtest "pool scan = sequential scan (non-commutative op)"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 500) small_string)
    (fun xs ->
      let pa = Par_array.of_list xs in
      let s1 = Elementary.scan ( ^ ) pa in
      let s2 = Elementary.scan ~exec:(Lazy.force pexec) ( ^ ) pa in
      Par_array.equal ( = ) s1 s2)

let test_scan_exclusive () =
  let pa = Par_array.of_list [ 1; 2; 3 ] in
  let r = Elementary.scan_exclusive ( + ) 0 pa in
  Alcotest.(check (list int)) "exclusive" [ 0; 1; 3 ] (Par_array.to_list r)

let test_zip_with () =
  let a = Par_array.of_list [ 1; 2; 3 ] and b = Par_array.of_list [ 10; 20; 30 ] in
  Alcotest.(check (list int)) "zip" [ 11; 22; 33 ]
    (Par_array.to_list (Elementary.zip_with ( + ) a b))

(* --- Communication ------------------------------------------------------------- *)

let test_rotate () =
  let pa = Par_array.of_list [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "left by 2" [ 2; 3; 4; 0; 1 ]
    (Par_array.to_list (Communication.rotate 2 pa));
  Alcotest.(check (list int)) "right by 1" [ 4; 0; 1; 2; 3 ]
    (Par_array.to_list (Communication.rotate (-1) pa))

let prop_rotate_compose =
  qtest "rotate a . rotate b = rotate (a+b)"
    QCheck.(triple (list small_int) (int_range (-10) 10) (int_range (-10) 10))
    (fun (xs, a, b) ->
      let pa = Par_array.of_list xs in
      Par_array.equal ( = )
        (Communication.rotate a (Communication.rotate b pa))
        (Communication.rotate (a + b) pa))

let prop_rotate_identity =
  qtest "rotate 0 = id and rotate n = id"
    QCheck.(list small_int)
    (fun xs ->
      let pa = Par_array.of_list xs in
      Par_array.equal ( = ) (Communication.rotate 0 pa) pa
      && Par_array.equal ( = ) (Communication.rotate (List.length xs) pa) pa)

let test_brdcast () =
  let pa = Par_array.of_list [ 10; 20 ] in
  let r = Communication.brdcast 7 pa in
  Alcotest.(check (list (pair int int))) "paired" [ (7, 10); (7, 20) ] (Par_array.to_list r)

let test_applybrdcast () =
  let pa = Par_array.of_list [ 10; 20; 30 ] in
  let r = Communication.applybrdcast (fun x -> x + 1) 2 pa in
  Alcotest.(check (list (pair int int))) "applied and broadcast"
    [ (31, 10); (31, 20); (31, 30) ]
    (Par_array.to_list r)

let test_fetch () =
  let pa = Par_array.of_list [ 0; 10; 20; 30 ] in
  let r = Communication.fetch (fun i -> (i + 1) mod 4) pa in
  Alcotest.(check (list int)) "fetched" [ 10; 20; 30; 0 ] (Par_array.to_list r)

let test_fetch_one_to_many () =
  let pa = Par_array.of_list [ 5; 6; 7 ] in
  let r = Communication.fetch (fun _ -> 0) pa in
  Alcotest.(check (list int)) "all from source 0" [ 5; 5; 5 ] (Par_array.to_list r)

let prop_fetch_compose =
  qtest "fetch f . fetch g = fetch (g . f)"
    QCheck.(pair (int_range 1 20) (pair (int_range 0 100) (int_range 0 100)))
    (fun (n, (ka, kb)) ->
      let pa = Par_array.init n (fun i -> i * 3) in
      let f i = (i + ka) mod n and g i = (i * (1 + (kb mod 3))) mod n in
      let lhs = Communication.fetch f (Communication.fetch g pa) in
      let rhs = Communication.fetch (fun i -> g (f i)) pa in
      Par_array.equal ( = ) lhs rhs)

let test_send_many_to_one () =
  let pa = Par_array.of_list [ 1; 2; 3; 4 ] in
  let r = Communication.send (fun k -> [ k / 2 ]) pa in
  Alcotest.(check (array int)) "site 0" [| 1; 2 |] (Par_array.get r 0);
  Alcotest.(check (array int)) "site 1" [| 3; 4 |] (Par_array.get r 1);
  Alcotest.(check (array int)) "site 2 empty" [||] (Par_array.get r 2)

let test_send_one_to_many () =
  let pa = Par_array.of_list [ 1; 2 ] in
  let r = Communication.send (fun k -> if k = 0 then [ 0; 1 ] else []) pa in
  Alcotest.(check (array int)) "duplicated" [| 1 |] (Par_array.get r 0);
  Alcotest.(check (array int)) "second copy" [| 1 |] (Par_array.get r 1)

let prop_send_one_compose =
  qtest "send_one f . send_one g = send_one (f . g) (permutations)"
    QCheck.(pair (int_range 1 20) (pair (int_range 0 19) (int_range 0 19)))
    (fun (n, (ka, kb)) ->
      let pa = Par_array.init n (fun i -> i) in
      let f i = (i + ka) mod n and g i = (i + kb) mod n in
      let lhs = Communication.send_one f (Communication.send_one g pa) in
      let rhs = Communication.send_one (fun k -> f (g k)) pa in
      Par_array.equal ( = ) lhs rhs)

let test_send_one_rejects_collision () =
  Alcotest.(check bool) "non-injective rejected" true
    (try
       ignore (Communication.send_one (fun _ -> 0) (Par_array.of_list [ 1; 2 ]));
       false
     with Invalid_argument _ -> true)

let test_all_to_all () =
  let pa = Par_array.of_list [ 1; 2; 3 ] in
  let r = Communication.all_to_all pa in
  Alcotest.(check (array int)) "everyone has everything" [| 1; 2; 3 |] (Par_array.get r 1)

(* --- Computational ---------------------------------------------------------------- *)

let test_farm = both_execs (fun exec ->
    let jobs = Par_array.init 20 Fun.id in
    let r = Computational.farm ~exec (fun env x -> (env * x) + 1) 10 jobs in
    Alcotest.(check bool) (exec.Exec.name ^ " farm") true
      (Par_array.equal ( = ) r (Par_array.init 20 (fun i -> (10 * i) + 1))))

let test_farm_is_map () =
  let jobs = Par_array.init 9 Fun.id in
  let f env x = env + (x * x) in
  Alcotest.(check bool) "farm f env = map (f env)" true
    (Par_array.equal ( = )
       (Computational.farm f 3 jobs)
       (Elementary.map (f 3) jobs))

let test_farm_dynamic () =
  let jobs = Par_array.init 50 Fun.id in
  let r = Computational.farm_dynamic (Lazy.force pool) (fun env x -> env - x) 100 jobs in
  Alcotest.(check bool) "dynamic farm" true
    (Par_array.equal ( = ) r (Par_array.init 50 (fun i -> 100 - i)))

let test_iter_until () =
  let r = Computational.iter_until (fun x -> x * 2) (fun x -> x + 1) (fun x -> x > 100) 3 in
  (* 3 -> 6 -> ... -> 192; final solve adds 1 *)
  Alcotest.(check int) "iterate then finalise" 193 r

let test_iter_until_immediate () =
  let r = Computational.iter_until (fun x -> x + 1) string_of_int (fun _ -> true) 7 in
  Alcotest.(check string) "condition already true" "7" r

let test_iter_for () =
  let r = Computational.iter_for 5 (fun i x -> x + i) 0 in
  Alcotest.(check int) "sum of indices" 10 r;
  Alcotest.(check int) "zero iterations" 42 (Computational.iter_for 0 (fun _ x -> x + 1) 42)

let test_iter_for_negative () =
  Alcotest.(check bool) "negative count rejected" true
    (try
       ignore (Computational.iter_for (-1) (fun _ x -> x) 0);
       false
     with Invalid_argument _ -> true)

let test_spmd_stages () =
  (* Two supersteps: local increment, then a global rotation. *)
  let st =
    Computational.stage
      ~global:(Communication.rotate 1)
      ~local:(fun _ x -> x + 1)
      ()
  in
  let pa = Par_array.of_list [ 10; 20; 30 ] in
  let r = Computational.spmd [ st; st ] pa in
  (* step: +1 then rotate: <21,31,11> ; again: <32,12,22> *)
  Alcotest.(check (list int)) "two supersteps" [ 32; 12; 22 ] (Par_array.to_list r)

let test_spmd_empty_is_id () =
  let pa = Par_array.of_list [ 1; 2 ] in
  Alcotest.(check bool) "SPMD [] = id" true (Par_array.equal ( = ) (Computational.spmd [] pa) pa)

(* --- Config extras --------------------------------------------------------------- *)

let test_align3 () =
  let a = Par_array.of_list [ 1; 2 ]
  and b = Par_array.of_list [ "x"; "y" ]
  and c = Par_array.of_list [ 1.5; 2.5 ] in
  let abc = Config.align3 a b c in
  Alcotest.(check bool) "triple" true (Par_array.get abc 1 = (2, "y", 2.5));
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Config.align3 a b (Par_array.of_list [ 1.0 ]));
       false
     with Invalid_argument _ -> true)

let test_distribution3 () =
  let conf =
    Config.distribution3 ~move1:Fun.id ~pat1:(Partition.Block 2) ~move2:Fun.id
      ~pat2:(Partition.Cyclic 2) ~move3:Fun.id ~pat3:(Partition.Block 2) [| 1; 2; 3; 4 |]
      [| 5; 6; 7; 8 |] [| 9; 10; 11; 12 |]
  in
  let a0, b0, c0 = Par_array.get conf 0 in
  Alcotest.(check (array int)) "block" [| 1; 2 |] a0;
  Alcotest.(check (array int)) "cyclic" [| 5; 7 |] b0;
  Alcotest.(check (array int)) "block again" [| 9; 10 |] c0

let test_distribution_list () =
  let confs =
    Config.distribution_list
      [ (Fun.id, Partition.Block 2); (Fun.id, Partition.Cyclic 2) ]
      [ [| 1; 2; 3 |]; [| 4; 5; 6 |] ]
  in
  Alcotest.(check int) "two configurations" 2 (List.length confs);
  Alcotest.(check bool) "count mismatch raises" true
    (try
       ignore (Config.distribution_list [ (Fun.id, Partition.Block 2) ] []);
       false
     with Invalid_argument _ -> true)

let test_redistribution_list () =
  let rs =
    Config.redistribution_list
      [ Communication.rotate 1; Communication.rotate (-1) ]
      [ Par_array.of_list [ 1; 2; 3 ]; Par_array.of_list [ 4; 5; 6 ] ]
  in
  Alcotest.(check (list (list int))) "componentwise movement"
    [ [ 2; 3; 1 ]; [ 6; 4; 5 ] ]
    (List.map Par_array.to_list rs)

let prop_scan_exclusive_shifts_inclusive =
  qtest "scan_exclusive = unit :: init of scan"
    QCheck.(list small_int)
    (fun xs ->
      let pa = Par_array.of_list xs in
      let inc = Elementary.scan ( + ) pa in
      let exc = Elementary.scan_exclusive ( + ) 0 pa in
      let n = List.length xs in
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = if i = 0 then 0 else Par_array.get inc (i - 1) in
        if Par_array.get exc i <> expect then ok := false
      done;
      !ok)

let test_fold_with_unit () =
  Alcotest.(check int) "empty gives unit" 42
    (Elementary.fold_with_unit ( + ) 42 (Par_array.of_array [||]));
  Alcotest.(check int) "non-empty folds" 6
    (Elementary.fold_with_unit ( + ) 0 (Par_array.of_list [ 1; 2; 3 ]))

let prop_block_cyclic_balanced =
  qtest "block-cyclic part sizes differ by at most one block"
    QCheck.(triple (int_range 0 100) (int_range 1 6) (int_range 1 5))
    (fun (n, parts, block) ->
      let sizes = Partition.part_sizes (Partition.Block_cyclic { parts; block }) ~n in
      let mx = Array.fold_left max 0 sizes and mn = Array.fold_left min max_int sizes in
      mx - mn <= block)

let test_par_array2_zip_mismatch () =
  let a = Par_array2.init ~rows:2 ~cols:2 (fun _ _ -> 0) in
  let b = Par_array2.init ~rows:2 ~cols:3 (fun _ _ -> 0) in
  Alcotest.(check bool) "shape mismatch raises" true
    (try
       ignore (Par_array2.zip a b);
       false
     with Invalid_argument _ -> true)

let prop_rotate_col_inverse =
  qtest ~count:100 "rotate_col df then -df = id"
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range (-5) 5))
    (fun (r, c, k) ->
      let m = mk_matrix r c in
      let df j = (j * k) mod 5 in
      Par_array2.equal ( = )
        (Par_array2.rotate_col (fun j -> -df j) (Par_array2.rotate_col df m))
        m)

(* --- Nested (segmented) operations ------------------------------------------------- *)

let gen_nested =
  QCheck.Gen.(
    map
      (fun segs -> Par_array.of_list (List.map Array.of_list segs))
      (list_size (int_range 0 8) (list_size (int_range 0 10) small_int)))

let arb_nested =
  QCheck.make
    ~print:(fun nested ->
      Fmt.str "%a" (Par_array.pp (fun ppf a -> Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") int) a)) nested)
    gen_nested

let prop_segmented_scan_matches_reference =
  qtest "segmented scan (flat machinery) = per-segment scan"
    arb_nested
    (fun nested ->
      let got = Nested.segmented_scan ( + ) nested in
      let expect = Nested.segmented_scan_reference ( + ) nested in
      Par_array.equal ( = ) got expect)

let prop_segmented_scan_pool_backend =
  qtest ~count:60 "segmented scan on the pool backend"
    arb_nested
    (fun nested ->
      let got = Nested.segmented_scan ~exec:(Lazy.force pexec) ( ^ )
          (Elementary.map (Array.map string_of_int) nested)
      in
      let expect =
        Nested.segmented_scan_reference ( ^ ) (Elementary.map (Array.map string_of_int) nested)
      in
      Par_array.equal ( = ) got expect)

let prop_segmented_fold =
  qtest "segmented fold = per-segment sum"
    arb_nested
    (fun nested ->
      let got = Nested.segmented_fold ( + ) 0 nested in
      let expect = Elementary.map (Array.fold_left ( + ) 0) nested in
      Par_array.equal ( = ) got expect)

let prop_segmented_op_associative =
  qtest "flag-reset lift preserves associativity"
    QCheck.(triple (pair bool small_int) (pair bool small_int) (pair bool small_int))
    (fun (a, b, c) ->
      let op = Nested.segmented_op ( + ) in
      op (op a b) c = op a (op b c))

let test_flatten_roundtrip () =
  let nested = Par_array.of_list [ [| 1; 2 |]; [||]; [| 3 |] ] in
  let lengths = Nested.segment_lengths nested in
  let flat = Array.map snd (Nested.flatten_with_flags nested) in
  Alcotest.(check bool) "unflatten inverts" true
    (Par_array.equal ( = ) (Nested.unflatten lengths flat) nested)

(* --- Stream skeletons --------------------------------------------------------------- *)

let test_stream_single_stage () =
  let pipe = Stream_skel.stage (fun x -> x * 3) in
  Alcotest.(check (list int)) "map law" [ 3; 6; 9 ] (Stream_skel.run pipe [ 1; 2; 3 ])

let test_stream_composition () =
  let open Stream_skel in
  let pipe = stage (fun x -> x + 1) >>> stage (fun x -> x * 2) >>> stage string_of_int in
  Alcotest.(check (list string)) "pipeline" [ "4"; "6"; "8" ] (run pipe [ 1; 2; 3 ])

let test_stream_farm_preserves_order () =
  let open Stream_skel in
  (* Jobs with inversely proportional cost: later jobs finish first inside
     the farm; the collector must still restore input order. *)
  let slow_for x =
    let spin = (50 - x) * 2000 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := !acc + i
    done;
    ignore !acc;
    x * x
  in
  let pipe = farm ~workers:4 slow_for in
  let inputs = List.init 50 Fun.id in
  Alcotest.(check (list int)) "ordered" (List.map (fun x -> x * x) inputs) (run pipe inputs)

let test_stream_law_matches_apply () =
  let open Stream_skel in
  let pipe = stage (fun x -> x - 7) >>> farm ~workers:3 (fun x -> x * x) >>> stage (fun x -> x mod 97) in
  let inputs = List.init 200 (fun i -> i * 13) in
  Alcotest.(check (list int)) "run = map apply" (List.map (apply pipe) inputs) (run pipe inputs)

let test_stream_empty_input () =
  let pipe = Stream_skel.stage (fun x -> x + 1) in
  Alcotest.(check (list int)) "empty" [] (Stream_skel.run pipe [])

let test_stream_failure_propagates () =
  let open Stream_skel in
  let pipe = stage (fun x -> if x = 5 then failwith "boom" else x) >>> stage (fun x -> x * 2) in
  Alcotest.(check bool) "Stage_failure raised" true
    (try
       ignore (run pipe [ 1; 2; 3; 4; 5; 6 ]);
       false
     with Stage_failure (Failure msg, _) -> msg = "boom")

let test_stream_invalid_workers () =
  Alcotest.(check bool) "0 workers rejected" true
    (try
       ignore (Stream_skel.stage ~workers:0 Fun.id);
       false
     with Invalid_argument _ -> true)

let test_stream_stage_count () =
  let open Stream_skel in
  Alcotest.(check int) "three stages" 3
    (stages (stage Fun.id >>> stage Fun.id >>> stage Fun.id))

let prop_stream_matches_list_map =
  qtest ~count:25 "stream run = List.map (sequential meaning)"
    QCheck.(pair (list small_int) (int_range 1 4))
    (fun (xs, workers) ->
      let open Stream_skel in
      let pipe = farm ~workers (fun x -> (x * 31) mod 101) in
      run pipe xs = List.map (apply pipe) xs)

(* --- Fused primitives ------------------------------------------------------------- *)

let test_fused_map_fold =
  both_execs (fun exec ->
      let pa = Par_array.init 101 (fun i -> i - 50) in
      let f x = (2 * x) + 1 in
      Alcotest.(check int)
        ("map_fold = fold.map on " ^ exec.Exec.name)
        (Elementary.fold ~exec ( + ) (Elementary.map ~exec f pa))
        (Elementary.map_fold ~exec ( + ) f pa))

let test_fused_map_scan =
  both_execs (fun exec ->
      let pa = Par_array.init 97 (fun i -> i mod 13) in
      let f x = x * 3 in
      Alcotest.check int_par
        ("map_scan = scan.map on " ^ exec.Exec.name)
        (Elementary.scan ~exec ( + ) (Elementary.map ~exec f pa))
        (Elementary.map_scan ~exec ( + ) f pa))

let test_fused_map_compose =
  both_execs (fun exec ->
      let pa = Par_array.init 50 Fun.id in
      Alcotest.check int_par
        ("map_compose = map.map on " ^ exec.Exec.name)
        (Elementary.map ~exec (fun x -> x + 1) (Elementary.map ~exec (fun x -> x * x) pa))
        (Elementary.map_compose ~exec (fun x -> x + 1) (fun x -> x * x) pa))

(* List append is associative but not commutative: locks the index order of
   the parallel combine. *)
let test_fused_combine_order =
  both_execs (fun exec ->
      let pa = Par_array.init 40 Fun.id in
      Alcotest.(check (list int))
        ("combine order on " ^ exec.Exec.name)
        (List.init 40 Fun.id)
        (Elementary.map_fold ~exec ( @ ) (fun x -> [ x ]) pa))

let test_fused_empty =
  both_execs (fun exec ->
      Alcotest.(check bool) "map_fold empty raises" true
        (try
           ignore (Elementary.map_fold ~exec ( + ) Fun.id (Par_array.of_list []));
           false
         with Invalid_argument _ -> true);
      Alcotest.(check int) "map_scan empty = empty" 0
        (Par_array.length (Elementary.map_scan ~exec ( + ) Fun.id (Par_array.of_list []))))

(* --- Flat (unboxed Bigarray tier) -------------------------------------------------
   [Partition] on boxed arrays is the executable specification: for every
   pattern, [Flat.apply]/[unapply] must produce the same decomposition
   element-for-element, including the fast paths (Block views,
   Cyclic/Block_cyclic strided copies) against the generic assign-driven
   path. *)

let flat_of_ints xs = Flat.of_array Flat.int (Array.of_list xs)

let prop_flat_apply_matches_partition =
  qtest "Flat.apply = Partition.apply elementwise (int)"
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      let fa = flat_of_ints xs in
      List.for_all
        (fun pat ->
          let boxed = Par_array.to_array (Partition.apply pat a) in
          let flat = Flat.apply pat fa in
          Array.length boxed = Array.length flat
          && Array.for_all2 (fun b fl -> b = Flat.to_array fl) boxed flat)
        (patterns_for (Array.length a)))

let prop_flat_roundtrip =
  qtest "Flat.unapply (Flat.apply pat a) = a for every pattern"
    QCheck.(list small_int)
    (fun xs ->
      let fa = flat_of_ints xs in
      List.for_all
        (fun pat ->
          Flat.to_array (Flat.unapply pat (Flat.apply pat fa) ~kind:Flat.int)
          = Array.of_list xs)
        (patterns_for (List.length xs)))

let prop_flat_fastpath_matches_generic =
  qtest "Flat fast paths = generic path"
    QCheck.(list small_int)
    (fun xs ->
      let fa = flat_of_ints xs in
      List.for_all
        (fun pat ->
          let fast = Flat.apply pat fa and spec = Flat.apply_generic pat fa in
          Array.length fast = Array.length spec
          && Array.for_all2 (fun a b -> Flat.equal a b) fast spec
          && Flat.equal
               (Flat.unapply pat fast ~kind:Flat.int)
               (Flat.unapply_generic pat spec ~kind:Flat.int))
        (patterns_for (List.length xs)))

let prop_flat_float_roundtrip =
  qtest "Flat float roundtrip across patterns"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let fa = Flat.of_float_array a in
      List.for_all
        (fun pat ->
          Flat.to_float_array (Flat.unapply pat (Flat.apply pat fa) ~kind:Flat.float64) = a)
        (patterns_for (Array.length a)))

let test_flat_edge_sizes () =
  (* empty, single-element, and non-divisible sizes across the three
     regular patterns, checked against the boxed specification *)
  let pats = [ Partition.Block 3; Partition.Cyclic 3; Partition.Block_cyclic { parts = 3; block = 2 } ] in
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> (i * 7) + 1) in
      let fa = Flat.of_array Flat.int a in
      List.iter
        (fun pat ->
          let boxed = Par_array.to_array (Partition.apply pat a) in
          let flat = Flat.apply pat fa in
          Alcotest.(check int)
            (Printf.sprintf "parts at n=%d" n)
            (Array.length boxed) (Array.length flat);
          Array.iteri
            (fun k b -> Alcotest.(check (array int)) "part contents" b (Flat.to_array flat.(k)))
            boxed;
          Alcotest.(check (array int)) "roundtrip" a
            (Flat.to_array (Flat.unapply pat flat ~kind:Flat.int)))
        pats)
    [ 0; 1; 2; 3; 5; 7 ]

let test_flat_views_alias () =
  let fa = Flat.of_float_array [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let v = Flat.sub_view fa ~pos:2 ~len:3 in
  Alcotest.(check int) "view length" 3 (Flat.length v);
  Flat.set v 0 99.0;
  Alcotest.(check (float 0.0)) "view aliases base" 99.0 (Flat.get fa 2);
  (* Block parts are views of the input *)
  let parts = Flat.apply (Partition.Block 2) fa in
  Flat.set parts.(0) 0 (-1.0);
  Alcotest.(check (float 0.0)) "block part aliases input" (-1.0) (Flat.get fa 0);
  (* unapply always yields fresh storage *)
  let joined = Flat.unapply (Partition.Block 2) parts ~kind:Flat.float64 in
  Flat.set joined 0 7.0;
  Alcotest.(check (float 0.0)) "unapply is fresh" (-1.0) (Flat.get fa 0)

(* --- Flat_exec (unboxed host kernels) ---------------------------------------------

   The boxed skeletons are the executable specification. Operands are
   dyadic rationals and the operators exactly associative (+., max, min
   on dyadics), so every grouping yields the same bits — all comparisons
   below are bitwise ([Float.equal]), never epsilon. *)

let dyadics_of_ints xs = Array.of_list (List.map (fun i -> float_of_int i *. 0.25) xs)
let bitwise a b = Array.length a = Array.length b && Array.for_all2 Float.equal a b

let flat_backends =
  lazy [ Flat_exec.sequential; Flat_exec.on_pool (Lazy.force pool) ]

let prop_flat_exec_bitwise =
  qtest "Flat_exec kernels = boxed skeletons, bitwise (both backends)"
    QCheck.(list (int_range (-2000) 2000))
    (fun xs ->
      let a = dyadics_of_ints xs in
      let n = Array.length a in
      let fa = Flat.of_float_array a in
      let pa = Par_array.of_array a in
      List.for_all
        (fun ((fx : Flat_exec.t), exec) ->
          let open Flat_exec in
          bitwise
            (Par_array.to_array (Elementary.map ~exec (fun x -> x *. 2.0) pa))
            (Flat.to_float_array (fx.fmap (Scale 2.0) fa))
          && bitwise
               (Par_array.to_array (Elementary.scan ~exec ( +. ) pa))
               (Flat.to_float_array (fx.fscan Add fa))
          && bitwise
               (Par_array.to_array
                  (Elementary.map_scan ~exec Float.max (fun x -> x +. 1.0) pa))
               (Flat.to_float_array (fx.fmap_scan (Offset 1.0) Max fa))
          && (n = 0
             || Float.equal (Elementary.fold ~exec ( +. ) pa) (fx.ffold Add fa)
                && Float.equal
                     (Elementary.map_fold ~exec Float.min (fun x -> -.x) pa)
                     (fx.fmap_fold Neg Min fa)))
        (List.combine (Lazy.force flat_backends)
           [ Exec.sequential; Lazy.force pexec ]))

let test_flat_exec_edge_sizes () =
  (* every size from empty through 7: below, at, and above the pool's
     single-chunk regime, including the fold precondition *)
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> float_of_int (i - 3) *. 0.5) in
      let fa = Flat.of_float_array a in
      let expect_scan = Array.copy a in
      for i = 1 to n - 1 do
        expect_scan.(i) <- expect_scan.(i - 1) +. a.(i)
      done;
      List.iter
        (fun (fx : Flat_exec.t) ->
          let open Flat_exec in
          Alcotest.(check bool)
            (Printf.sprintf "%s scan n=%d" fx.name n)
            true
            (bitwise expect_scan (Flat.to_float_array (fx.fscan Add fa)));
          Alcotest.(check bool)
            (Printf.sprintf "%s map n=%d" fx.name n)
            true
            (bitwise
               (Array.map (fun x -> x +. 1.0) a)
               (Flat.to_float_array (fx.fmap (Offset 1.0) fa)));
          if n = 0 then
            Alcotest.(check bool)
              (Printf.sprintf "%s ffold empty raises" fx.name)
              true
              (try
                 ignore (fx.ffold Add fa : float);
                 false
               with Invalid_argument _ -> true)
          else
            Alcotest.(check bool)
              (Printf.sprintf "%s fold n=%d" fx.name n)
              true
              (Float.equal
                 (Array.fold_left ( +. ) a.(0) (Array.sub a 1 (n - 1)))
                 (fx.ffold Add fa)))
        (Lazy.force flat_backends))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_flat_scan_two_phase_vs_spec () =
  (* The pool scan is the Blelloch-style two-phase layout; the spec is the
     plain sequential prefix loop. Sizes straddle the grain so the run
     always crosses several chunks plus a ragged tail. *)
  let fx = Flat_exec.on_pool (Lazy.force pool) in
  List.iter
    (fun n ->
      let a =
        Array.init n (fun i -> float_of_int ((i * 37 mod 256) - 128) *. 0.125)
      in
      let fa = Flat.of_float_array a in
      let spec = Array.copy a in
      for i = 1 to n - 1 do
        spec.(i) <- spec.(i - 1) +. a.(i)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "two-phase scan = prefix spec at n=%d" n)
        true
        (bitwise spec (Flat.to_float_array (fx.Flat_exec.fscan Flat_exec.Add fa))))
    [ 255; 256; 257; 1000; 4096; 5001 ]

let test_flat_scan_minor_words () =
  (* The acceptance pin for the bench pair host/{boxed,flat}-scan: the
     flat leg must allocate strictly fewer minor words. Sequential
     backends only — [Gc.minor_words] is per-domain, and the pool would
     do its allocating on the workers where we cannot see it. The boxed
     scan boxes a float per output element (>= 2n minor words at
     n = 100k); the flat scan's output lives off-heap, so only the
     Bigarray handle itself touches the minor heap. *)
  let n = 100_000 in
  let a = Array.init n (fun i -> float_of_int ((i * 7919 mod 4096) - 2048)) in
  let fa = Flat.of_float_array a in
  let pa = Par_array.of_array a in
  let boxed () = ignore (Elementary.scan ( +. ) pa : float Par_array.t) in
  let flat () =
    ignore (Flat_exec.sequential.Flat_exec.fscan Flat_exec.Add fa : Flat.float1)
  in
  boxed ();
  flat ();
  let w0 = Gc.minor_words () in
  boxed ();
  let w1 = Gc.minor_words () in
  flat ();
  let w2 = Gc.minor_words () in
  let boxed_words = w1 -. w0 and flat_words = w2 -. w1 in
  Alcotest.(check bool)
    (Printf.sprintf "flat scan %.0f minor words < boxed %.0f" flat_words
       boxed_words)
    true
    (flat_words < boxed_words)

(* --- Flat.Int (sort-family kernels) ----------------------------------------------- *)

let prop_flat_int_sort =
  qtest "Flat.Int.sort = Array.sort"
    QCheck.(list int)
    (fun xs ->
      let a = Array.of_list xs in
      let fa = Flat.Int.of_int_array a in
      Flat.Int.sort fa;
      let expect = Array.copy a in
      Array.sort compare expect;
      Flat.Int.is_sorted fa && Flat.Int.to_int_array fa = expect)

let test_flat_int_split_merge () =
  let a = Array.init 101 (fun i -> i * 31 mod 97) in
  let fa = Flat.Int.of_int_array a in
  Flat.Int.sort fa;
  let sorted = Flat.Int.to_int_array fa in
  Alcotest.(check bool) "sorted" true (Flat.Int.is_sorted fa);
  (match Flat.Int.midvalue fa with
  | None -> Alcotest.fail "midvalue on non-empty chunk"
  | Some m -> Alcotest.(check int) "midvalue = middle slot" sorted.(101 / 2) m);
  Alcotest.(check bool) "midvalue empty" true
    (Flat.Int.midvalue (Flat.Int.of_int_array [||]) = None);
  List.iter
    (fun pivot ->
      let lo, hi = Flat.Int.split_at pivot fa in
      Alcotest.(check int) "split lengths" 101 (Flat.length lo + Flat.length hi);
      Alcotest.(check bool) "low side <= pivot" true
        (Array.for_all (fun x -> x <= pivot) (Flat.Int.to_int_array lo));
      Alcotest.(check bool) "high side > pivot" true
        (Array.for_all (fun x -> x > pivot) (Flat.Int.to_int_array hi));
      Alcotest.(check (array int)) "merge restores the chunk" sorted
        (Flat.Int.to_int_array (Flat.Int.merge lo hi)))
    [ -1; 0; 13; 48; 96; 200 ];
  (* split_at halves are zero-copy views of the parent *)
  let lo, _ = Flat.Int.split_at sorted.(50) fa in
  let saved = Flat.get fa 0 in
  Flat.set lo 0 (saved + 1);
  Alcotest.(check int) "split halves alias parent" (saved + 1) (Flat.get fa 0);
  Flat.set lo 0 saved

(* --- Exec internals --------------------------------------------------------------- *)

let test_chunk_bounds () =
  Alcotest.(check (array int)) "10 into 3" [| 0; 4; 7; 10 |] (Exec.chunk_bounds 10 3);
  Alcotest.(check (array int)) "fewer elements than chunks" [| 0; 1; 2 |] (Exec.chunk_bounds 2 5)

let test_grain_for () =
  let p = Lazy.force pool in
  let w = max 1 (Runtime.Pool.num_workers p) in
  Alcotest.(check int) "n=0" 1 (Runtime.Pool.grain_for p 0);
  Alcotest.(check int) "small array runs as one task" 10 (Runtime.Pool.grain_for p 10);
  let n = 100_000 in
  let g = Runtime.Pool.grain_for p n in
  Alcotest.(check bool) "never below the minimum run" true (g >= 32);
  Alcotest.(check bool) "at most ~4 tasks per worker" true (((n + g - 1) / g) <= 4 * w)

let () =
  let suite =
    [
      ( "par_array",
        [
          Alcotest.test_case "basics" `Quick test_par_array_basics;
          Alcotest.test_case "bounds" `Quick test_par_array_bounds;
          Alcotest.test_case "of_array copies" `Quick test_par_array_of_array_copies;
          Alcotest.test_case "concat/sub" `Quick test_par_array_concat_sub;
          Alcotest.test_case "sub_view" `Quick test_par_array_sub_view;
        ] );
      ( "partition",
        [
          prop_partition_roundtrip;
          Alcotest.test_case "block sizes" `Quick test_partition_block_sizes;
          Alcotest.test_case "block contents" `Quick test_partition_block_contents;
          Alcotest.test_case "cyclic contents" `Quick test_partition_cyclic_contents;
          Alcotest.test_case "block-cyclic" `Quick test_partition_block_cyclic;
          Alcotest.test_case "parts > elements" `Quick test_partition_more_parts_than_elements;
          Alcotest.test_case "invalid patterns" `Quick test_partition_invalid;
          Alcotest.test_case "unapply consistency" `Quick test_partition_unapply_inconsistent;
          prop_partition_fastpath;
          Alcotest.test_case "fast paths at sizes 0..n<parts" `Quick
            test_partition_fastpath_small_sizes;
          prop_split_combine;
        ] );
      ( "partition2",
        [
          prop_partition2_roundtrip;
          Alcotest.test_case "row_block shape" `Quick test_partition2_row_block_shape;
          Alcotest.test_case "row_col_block shape" `Quick test_partition2_row_col_block_shape;
        ] );
      ( "par_array2",
        [
          Alcotest.test_case "imap/fold" `Quick test_par_array2_imap_fold;
          Alcotest.test_case "transpose" `Quick test_par_array2_transpose;
          Alcotest.test_case "rotate_row" `Quick test_rotate_row;
          Alcotest.test_case "rotate_col" `Quick test_rotate_col;
          prop_rotate_row_inverse;
        ] );
      ( "config",
        [
          Alcotest.test_case "align/unalign" `Quick test_align_unalign;
          Alcotest.test_case "align mismatch" `Quick test_align_mismatch;
          Alcotest.test_case "distribution2" `Quick test_distribution2;
          Alcotest.test_case "distribution with movement" `Quick test_distribution2_with_movement;
          Alcotest.test_case "redistribution" `Quick test_redistribution;
          Alcotest.test_case "gather inverse" `Quick test_gather_is_partition_inverse;
        ] );
      ( "elementary",
        [
          Alcotest.test_case "map (both backends)" `Quick test_map_both;
          Alcotest.test_case "imap (both backends)" `Quick test_imap_both;
          Alcotest.test_case "fold (both backends)" `Quick test_fold_both;
          Alcotest.test_case "fold order" `Quick test_fold_non_commutative;
          Alcotest.test_case "fold empty" `Quick test_fold_empty;
          Alcotest.test_case "scan (both backends)" `Quick test_scan_both;
          prop_scan_matches_seq;
          Alcotest.test_case "scan_exclusive" `Quick test_scan_exclusive;
          Alcotest.test_case "zip_with" `Quick test_zip_with;
        ] );
      ( "communication",
        [
          Alcotest.test_case "rotate" `Quick test_rotate;
          prop_rotate_compose;
          prop_rotate_identity;
          Alcotest.test_case "brdcast" `Quick test_brdcast;
          Alcotest.test_case "applybrdcast" `Quick test_applybrdcast;
          Alcotest.test_case "fetch" `Quick test_fetch;
          Alcotest.test_case "fetch one-to-many" `Quick test_fetch_one_to_many;
          prop_fetch_compose;
          Alcotest.test_case "send many-to-one" `Quick test_send_many_to_one;
          Alcotest.test_case "send one-to-many" `Quick test_send_one_to_many;
          prop_send_one_compose;
          Alcotest.test_case "send_one collision" `Quick test_send_one_rejects_collision;
          Alcotest.test_case "all_to_all" `Quick test_all_to_all;
        ] );
      ( "computational",
        [
          Alcotest.test_case "farm (both backends)" `Quick test_farm;
          Alcotest.test_case "farm = map" `Quick test_farm_is_map;
          Alcotest.test_case "dynamic farm" `Quick test_farm_dynamic;
          Alcotest.test_case "iter_until" `Quick test_iter_until;
          Alcotest.test_case "iter_until immediate" `Quick test_iter_until_immediate;
          Alcotest.test_case "iter_for" `Quick test_iter_for;
          Alcotest.test_case "iter_for negative" `Quick test_iter_for_negative;
          Alcotest.test_case "spmd stages" `Quick test_spmd_stages;
          Alcotest.test_case "spmd empty" `Quick test_spmd_empty_is_id;
        ] );
      ( "config_extra",
        [
          Alcotest.test_case "align3" `Quick test_align3;
          Alcotest.test_case "distribution3" `Quick test_distribution3;
          Alcotest.test_case "distribution_list" `Quick test_distribution_list;
          Alcotest.test_case "redistribution_list" `Quick test_redistribution_list;
          prop_scan_exclusive_shifts_inclusive;
          Alcotest.test_case "fold_with_unit" `Quick test_fold_with_unit;
          prop_block_cyclic_balanced;
          Alcotest.test_case "zip mismatch" `Quick test_par_array2_zip_mismatch;
          prop_rotate_col_inverse;
        ] );
      ( "nested",
        [
          prop_segmented_scan_matches_reference;
          prop_segmented_scan_pool_backend;
          prop_segmented_fold;
          prop_segmented_op_associative;
          Alcotest.test_case "flatten roundtrip" `Quick test_flatten_roundtrip;
        ] );
      ( "stream_skel",
        [
          Alcotest.test_case "single stage" `Quick test_stream_single_stage;
          Alcotest.test_case "composition" `Quick test_stream_composition;
          Alcotest.test_case "farm preserves order" `Slow test_stream_farm_preserves_order;
          Alcotest.test_case "run = map apply" `Slow test_stream_law_matches_apply;
          Alcotest.test_case "empty input" `Quick test_stream_empty_input;
          Alcotest.test_case "failure propagates" `Quick test_stream_failure_propagates;
          Alcotest.test_case "invalid workers" `Quick test_stream_invalid_workers;
          Alcotest.test_case "stage count" `Quick test_stream_stage_count;
          prop_stream_matches_list_map;
        ] );
      ( "fused",
        [
          Alcotest.test_case "map_fold = fold.map" `Quick test_fused_map_fold;
          Alcotest.test_case "map_scan = scan.map" `Quick test_fused_map_scan;
          Alcotest.test_case "map_compose = map.map" `Quick test_fused_map_compose;
          Alcotest.test_case "combine order" `Quick test_fused_combine_order;
          Alcotest.test_case "empty inputs" `Quick test_fused_empty;
        ] );
      ( "flat",
        [
          prop_flat_apply_matches_partition;
          prop_flat_roundtrip;
          prop_flat_fastpath_matches_generic;
          prop_flat_float_roundtrip;
          Alcotest.test_case "edge sizes vs boxed spec" `Quick test_flat_edge_sizes;
          Alcotest.test_case "view aliasing discipline" `Quick test_flat_views_alias;
        ] );
      ( "flat_exec",
        [
          prop_flat_exec_bitwise;
          Alcotest.test_case "edge sizes 0..7 (both backends)" `Quick test_flat_exec_edge_sizes;
          Alcotest.test_case "two-phase scan = prefix spec" `Quick test_flat_scan_two_phase_vs_spec;
          Alcotest.test_case "flat scan allocates fewer minor words" `Quick
            test_flat_scan_minor_words;
          prop_flat_int_sort;
          Alcotest.test_case "Flat.Int sort-family kernels" `Quick test_flat_int_split_merge;
        ] );
      ( "exec",
        [
          Alcotest.test_case "chunk bounds" `Quick test_chunk_bounds;
          Alcotest.test_case "grain heuristic" `Quick test_grain_for;
        ] );
    ]
  in
  let finally () = if Lazy.is_val pool then Runtime.Pool.teardown (Lazy.force pool) in
  Fun.protect ~finally (fun () -> Alcotest.run "scl" suite)
