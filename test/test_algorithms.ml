(* Tests for the paper's applications: hyperquicksort (three renderings),
   Gauss–Jordan (host SCL, simulator, sequential baseline), plus the
   sequential kernels they are built from. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

open Algorithms

(* --- sequential kernels ---------------------------------------------------- *)

let prop_quicksort_sorts =
  qtest "SEQ_QUICKSORT sorts any input"
    QCheck.(list int)
    (fun xs ->
      let a = Array.of_list xs in
      let sorted = Seq_kernels.quicksort a in
      let expect = Array.copy a in
      Array.sort compare expect;
      sorted = expect)

let test_quicksort_preserves_input () =
  let a = [| 3; 1; 2 |] in
  ignore (Seq_kernels.quicksort a);
  Alcotest.(check (array int)) "input untouched" [| 3; 1; 2 |] a

let test_midvalue () =
  Alcotest.(check (option int)) "empty" None (Seq_kernels.midvalue [||]);
  Alcotest.(check (option int)) "odd" (Some 2) (Seq_kernels.midvalue [| 1; 2; 3 |]);
  Alcotest.(check (option int)) "even picks upper middle" (Some 3) (Seq_kernels.midvalue [| 1; 2; 3; 4 |])

let prop_split_at =
  qtest "SPLIT: low <= pivot < high, nothing lost"
    QCheck.(pair (list small_int) small_int)
    (fun (xs, pivot) ->
      let a = Seq_kernels.quicksort (Array.of_list xs) in
      let lo, hi = Seq_kernels.split_at pivot a in
      Array.for_all (fun x -> x <= pivot) lo
      && Array.for_all (fun x -> x > pivot) hi
      && Array.append lo hi = a)

let prop_merge =
  qtest "MERGE of two sorted arrays is their sorted union"
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let a = Seq_kernels.quicksort (Array.of_list xs) in
      let b = Seq_kernels.quicksort (Array.of_list ys) in
      let m = Seq_kernels.merge a b in
      Seq_kernels.is_sorted m
      && m = Seq_kernels.quicksort (Array.append a b))

let test_is_sorted () =
  Alcotest.(check bool) "sorted" true (Seq_kernels.is_sorted [| 1; 2; 2; 5 |]);
  Alcotest.(check bool) "unsorted" false (Seq_kernels.is_sorted [| 2; 1 |]);
  Alcotest.(check bool) "empty" true (Seq_kernels.is_sorted [||])

let test_partial_pivot () =
  Alcotest.(check int) "largest |v| below row" 2
    (Seq_kernels.partial_pivot ~row:1 [| 9.0; 1.0; -5.0; 4.0 |])

let test_gauss_seq_small () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1 *)
  let x = Seq_kernels.gauss_seq [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] [| 5.0; 1.0 |] in
  Alcotest.(check bool) "x" true (Float.abs (x.(0) -. 2.0) < 1e-9);
  Alcotest.(check bool) "y" true (Float.abs (x.(1) -. 1.0) < 1e-9)

let test_gauss_seq_singular () =
  Alcotest.(check bool) "singular detected" true
    (try
       ignore (Seq_kernels.gauss_seq [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |]);
       false
     with Failure _ -> true)

let test_gauss_seq_needs_pivoting () =
  (* Zero on the diagonal: only solvable with row interchange. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Seq_kernels.gauss_seq a [| 3.0; 7.0 |] in
  Alcotest.(check bool) "solved via pivoting" true
    (Float.abs (x.(0) -. 7.0) < 1e-9 && Float.abs (x.(1) -. 3.0) < 1e-9)

let prop_matmul_identity =
  qtest ~count:30 "matmul with identity"
    QCheck.(int_range 1 8)
    (fun n ->
      let rng = Runtime.Xoshiro.of_seed n in
      let a = Array.init n (fun _ -> Array.init n (fun _ -> Runtime.Xoshiro.float rng 10.0)) in
      let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
      let c = Seq_kernels.matmul a id in
      Array.for_all2 (fun r1 r2 -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-12) r1 r2) c a)

(* --- hyperquicksort --------------------------------------------------------- *)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let prop_hqs_recursive_sorts =
  qtest ~count:60 "recursive SCL hyperquicksort sorts"
    QCheck.(pair (list int) (int_range 0 4))
    (fun (xs, dims) ->
      let a = Array.of_list xs in
      Hyperquicksort.sort_recursive ~dims a = sorted_copy a)

let prop_hqs_flat_sorts =
  qtest ~count:60 "flattened SCL hyperquicksort sorts"
    QCheck.(pair (list int) (int_range 0 4))
    (fun (xs, dims) ->
      let a = Array.of_list xs in
      Hyperquicksort.sort_flat ~dims a = sorted_copy a)

let prop_hqs_flat_equals_recursive =
  qtest ~count:60 "flattened = recursive (the flattening transformation is sound)"
    QCheck.(pair (list int) (int_range 0 4))
    (fun (xs, dims) ->
      let a = Array.of_list xs in
      Hyperquicksort.sort_flat ~dims a = Hyperquicksort.sort_recursive ~dims a)

let prop_hqs_sim_sorts =
  qtest ~count:25 "simulated hyperquicksort sorts"
    QCheck.(pair (list int) (int_range 0 3))
    (fun (xs, dims) ->
      let a = Array.of_list xs in
      let sorted, _ = Hyperquicksort.sort_sim ~procs:(1 lsl dims) a in
      sorted = sorted_copy a)

let test_hqs_adversarial_inputs () =
  (* Skewed inputs that can empty chunks / leaders. *)
  List.iter
    (fun a ->
      let expect = sorted_copy a in
      Alcotest.(check (array int)) "recursive" expect (Hyperquicksort.sort_recursive ~dims:3 a);
      Alcotest.(check (array int)) "flat" expect (Hyperquicksort.sort_flat ~dims:3 a);
      let s, _ = Hyperquicksort.sort_sim ~procs:8 a in
      Alcotest.(check (array int)) "sim" expect s)
    [
      [||];
      [| 5 |];
      Array.make 100 7;
      Array.init 100 (fun i -> -i);
      Array.init 100 (fun i -> i);
      Array.append (Array.make 50 0) (Array.make 50 1000);
      [| 3; 1 |];
    ]

let test_hqs_sim_rejects_non_power_of_two () =
  Alcotest.(check bool) "procs=6 rejected" true
    (try
       ignore (Hyperquicksort.sort_sim ~procs:6 [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_hqs_pool_backend () =
  let pool = Runtime.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let exec = Scl.Exec.on_pool pool in
      let rng = Runtime.Xoshiro.of_seed 99 in
      let a = Runtime.Xoshiro.int_array rng ~len:20_000 ~bound:1_000_000 in
      Alcotest.(check (array int)) "pool-backed recursive" (sorted_copy a)
        (Hyperquicksort.sort_recursive ~exec ~dims:3 a);
      Alcotest.(check (array int)) "pool-backed flat" (sorted_copy a)
        (Hyperquicksort.sort_flat ~exec ~dims:3 a))

let test_hqs_sim_speedup_shape () =
  (* The Table 1 / Figure 3 claim: simulated time decreases with processor
     count on the paper's workload, and the speedup is sub-linear. *)
  let rng = Runtime.Xoshiro.of_seed 4 in
  let a = Runtime.Xoshiro.int_array rng ~len:20_000 ~bound:1_000_000 in
  let time p =
    let _, stats = Hyperquicksort.sort_sim ~procs:p a in
    stats.Machine.Sim.makespan
  in
  let t1 = time 1 and t4 = time 4 and t16 = time 16 in
  Alcotest.(check bool) "monotone speedup" true (t16 < t4 && t4 < t1);
  let s16 = t1 /. t16 in
  Alcotest.(check bool) "sub-linear but real" true (s16 > 4.0 && s16 < 16.0)

let test_hqs_sim_deterministic () =
  let rng = Runtime.Xoshiro.of_seed 5 in
  let a = Runtime.Xoshiro.int_array rng ~len:5_000 ~bound:100_000 in
  let _, s1 = Hyperquicksort.sort_sim ~procs:8 a in
  let _, s2 = Hyperquicksort.sort_sim ~procs:8 a in
  Alcotest.(check bool) "same makespan" true (s1.Machine.Sim.makespan = s2.Machine.Sim.makespan);
  Alcotest.(check int) "same messages" s1.Machine.Sim.total_msgs s2.Machine.Sim.total_msgs

let prop_hqs_flatint_equals_boxed_sim =
  qtest ~count:25 "flat-int sim = boxed sim (values and costs)"
    QCheck.(pair (list int) (int_range 0 3))
    (fun (xs, dims) ->
      let a = Array.of_list xs in
      let procs = 1 lsl dims in
      let boxed, bs = Hyperquicksort.sort_sim ~procs a in
      let flat, fs = Hyperquicksort.sort_sim_flatint ~procs a in
      flat = boxed && fs.Machine.Sim.total_msgs = bs.Machine.Sim.total_msgs)

let test_hqs_flatint_adversarial () =
  List.iter
    (fun a ->
      let expect = sorted_copy a in
      let s, _ = Hyperquicksort.sort_sim_flatint ~procs:8 a in
      Alcotest.(check (array int)) "flat-int sim" expect s)
    [
      [||];
      [| 5 |];
      Array.make 100 7;
      Array.init 100 (fun i -> -i);
      Array.append (Array.make 50 0) (Array.make 50 1000);
    ]

let test_hqs_flatint_multicore () =
  let rng = Runtime.Xoshiro.of_seed 31 in
  let a = Runtime.Xoshiro.int_array rng ~len:10_000 ~bound:1_000_000 in
  let sorted, _ = Hyperquicksort.sort_multicore_flatint ~procs:4 a in
  Alcotest.(check (array int)) "flat-int multicore" (sorted_copy a) sorted;
  Alcotest.(check bool) "procs=6 rejected" true
    (try
       ignore (Hyperquicksort.sort_multicore_flatint ~procs:6 [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_hqs_traced_figure2 () =
  (* The Figure 2 regeneration: 32 values on a 2-cube, with stage notes. *)
  let rng = Runtime.Xoshiro.of_seed 2 in
  let a = Runtime.Xoshiro.int_array rng ~len:32 ~bound:100 in
  let sorted, _, notes = Hyperquicksort.sort_sim_traced ~procs:4 a in
  Alcotest.(check (array int)) "sorted" (sorted_copy a) sorted;
  Alcotest.(check bool) "has stage notes" true (List.length notes >= 12);
  Alcotest.(check bool) "mentions pivots" true
    (List.exists (fun (_, _, s) -> String.length s >= 5 && String.sub s 0 5 = "group") notes)

(* --- Gauss–Jordan ------------------------------------------------------------ *)

let test_gauss_scl_matches_seq () =
  let a, b = Gauss.random_system ~seed:11 40 in
  let x_seq = Seq_kernels.gauss_seq a b in
  let x_scl = Gauss.solve_scl ~parts:4 a b in
  Array.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "x[%d]" i) true (Float.abs (v -. x_seq.(i)) < 1e-9))
    x_scl

let prop_gauss_scl_residual =
  qtest ~count:20 "host-SCL Gauss–Jordan solves random systems"
    QCheck.(pair (int_range 1 30) (int_range 1 8))
    (fun (n, parts) ->
      let a, b = Gauss.random_system ~seed:(n + (100 * parts)) n in
      let x = Gauss.solve_scl ~parts a b in
      Seq_kernels.residual a x b < 1e-8)

let prop_gauss_sim_residual =
  qtest ~count:10 "simulated Gauss–Jordan solves random systems"
    QCheck.(pair (int_range 1 24) (int_range 1 6))
    (fun (n, procs) ->
      let a, b = Gauss.random_system ~seed:(n * 31 + procs) n in
      let x, _ = Gauss.solve_sim ~procs a b in
      Seq_kernels.residual a x b < 1e-8)

let test_gauss_sim_matches_scl () =
  let a, b = Gauss.random_system ~seed:3 20 in
  let x1 = Gauss.solve_scl ~parts:3 a b in
  let x2, _ = Gauss.solve_sim ~procs:3 a b in
  Array.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "x[%d]" i) true (Float.abs (v -. x2.(i)) < 1e-9))
    x1

let test_gauss_needs_pivoting_parallel () =
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Gauss.solve_scl ~parts:2 a [| 3.0; 7.0 |] in
  Alcotest.(check bool) "pivoted" true (Float.abs (x.(0) -. 7.0) < 1e-9);
  let x2, _ = Gauss.solve_sim ~procs:2 a [| 3.0; 7.0 |] in
  Alcotest.(check bool) "pivoted (sim)" true (Float.abs (x2.(0) -. 7.0) < 1e-9)

let test_gauss_singular_parallel () =
  let a = [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  Alcotest.(check bool) "singular detected in SCL version" true
    (try
       ignore (Gauss.solve_scl ~parts:2 a [| 1.0; 2.0 |]);
       false
     with Failure _ -> true)

let test_gauss_sim_scaling () =
  let a, b = Gauss.random_system ~seed:8 64 in
  let time p =
    let _, stats = Gauss.solve_sim ~procs:p a b in
    stats.Machine.Sim.makespan
  in
  let t1 = time 1 and t4 = time 4 in
  Alcotest.(check bool) "parallel is faster" true (t4 < t1)

(* --- Cannon ------------------------------------------------------------------ *)

let mat_close a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) r1 r2) a b

let prop_cannon_scl_matches_seq =
  qtest ~count:25 "Cannon (host SCL) = sequential matmul"
    QCheck.(pair (int_range 1 5) (int_range 1 4))
    (fun (q, scale) ->
      let n = q * scale in
      let a = Cannon.random_matrix ~seed:(n + q) n in
      let b = Cannon.random_matrix ~seed:(n * q) n in
      mat_close (Cannon.multiply_scl ~grid:q a b) (Seq_kernels.matmul a b))

let prop_cannon_sim_matches_seq =
  qtest ~count:12 "Cannon (simulated torus) = sequential matmul"
    QCheck.(pair (int_range 1 4) (int_range 1 3))
    (fun (q, scale) ->
      let n = q * scale in
      let a = Cannon.random_matrix ~seed:(7 * n) n in
      let b = Cannon.random_matrix ~seed:(13 * n) n in
      let c, _ = Cannon.multiply_sim ~grid:q a b in
      mat_close c (Seq_kernels.matmul a b))

let test_cannon_rejects_bad_grid () =
  let a = Cannon.random_matrix ~seed:1 6 in
  Alcotest.(check bool) "grid must divide n" true
    (try
       ignore (Cannon.multiply_scl ~grid:4 a a);
       false
     with Invalid_argument _ -> true)

let test_cannon_sim_scaling () =
  let a = Cannon.random_matrix ~seed:2 48 and b = Cannon.random_matrix ~seed:3 48 in
  let time q =
    let _, s = Cannon.multiply_sim ~grid:q a b in
    s.Machine.Sim.makespan
  in
  Alcotest.(check bool) "4x4 beats 1x1" true (time 4 < time 1)

(* --- Jacobi ------------------------------------------------------------------- *)

let vec_close a b = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) a b

let test_jacobi_scl_matches_seq () =
  let f = Array.init 60 (fun j -> float_of_int (j mod 7)) in
  let r0 = Jacobi.solve_seq ~tol:1e-9 f ~left:1.0 ~right:(-2.0) in
  let r1 = Jacobi.solve_scl ~parts:4 ~tol:1e-9 f ~left:1.0 ~right:(-2.0) in
  Alcotest.(check bool) "solutions agree" true (vec_close r0.solution r1.solution);
  Alcotest.(check int) "same iteration count" r0.iterations r1.iterations

let prop_jacobi_sim_matches_seq =
  qtest ~count:8 "simulated Jacobi = sequential"
    QCheck.(pair (int_range 2 40) (int_range 1 6))
    (fun (n, procs) ->
      let f = Array.init n (fun j -> float_of_int ((j * 3 mod 5) - 2)) in
      let r0 = Jacobi.solve_seq ~tol:1e-7 ~max_iter:20_000 f ~left:0.5 ~right:0.25 in
      let r1, _ = Jacobi.solve_sim ~procs ~tol:1e-7 ~max_iter:20_000 f ~left:0.5 ~right:0.25 in
      vec_close r0.solution r1.solution && r0.iterations = r1.iterations)

let test_jacobi_converges_to_analytic () =
  (* -u'' = pi^2 sin(pi x), u(0)=u(1)=0  =>  u = sin(pi x) *)
  let n = 150 in
  let pi = Float.pi in
  let f =
    Array.init n (fun j ->
        let x = float_of_int (j + 1) /. float_of_int (n + 1) in
        pi *. pi *. sin (pi *. x))
  in
  let r = Jacobi.solve_scl ~parts:3 ~tol:1e-10 ~max_iter:200_000 f ~left:0.0 ~right:0.0 in
  let err = ref 0.0 in
  Array.iteri
    (fun j v ->
      let x = float_of_int (j + 1) /. float_of_int (n + 1) in
      err := Float.max !err (Float.abs (v -. sin (pi *. x))))
    r.solution;
  Alcotest.(check bool) "close to sin(pi x)" true (!err < 1e-3)

let test_jacobi_max_iter_respected () =
  let f = Array.make 50 1.0 in
  let r = Jacobi.solve_scl ~parts:2 ~tol:0.0 ~max_iter:17 f ~left:0.0 ~right:0.0 in
  Alcotest.(check int) "stopped at cap" 17 r.iterations

let test_jacobi_empty () =
  let r = Jacobi.solve_scl ~parts:4 [||] ~left:0.0 ~right:0.0 in
  Alcotest.(check int) "no iterations" 0 r.iterations;
  let r2, _ = Jacobi.solve_sim ~procs:3 [||] ~left:0.0 ~right:0.0 in
  Alcotest.(check (array (float 0.0))) "empty solution" [||] r2.solution

(* --- baseline sorts ------------------------------------------------------------ *)

let prop_psrs_scl_sorts =
  qtest ~count:40 "PSRS (host SCL) sorts"
    QCheck.(pair (list int) (int_range 1 8))
    (fun (xs, parts) ->
      let a = Array.of_list xs in
      Sample_sort.sort_scl ~parts a = sorted_copy a)

let prop_psrs_sim_sorts =
  qtest ~count:20 "PSRS (simulated) sorts"
    QCheck.(pair (list int) (int_range 1 6))
    (fun (xs, procs) ->
      let a = Array.of_list xs in
      let sorted, _ = Sample_sort.sort_sim ~procs a in
      sorted = sorted_copy a)

let prop_bitonic_sim_sorts =
  qtest ~count:20 "bitonic (simulated) sorts"
    QCheck.(pair (list (int_bound 1_000_000)) (int_range 0 3))
    (fun (xs, dims) ->
      let a = Array.of_list xs in
      let sorted, _ = Bitonic.sort_sim ~procs:(1 lsl dims) a in
      sorted = sorted_copy a)

let test_bitonic_rejects_sentinel () =
  Alcotest.(check bool) "max_int reserved" true
    (try
       ignore (Bitonic.sort_sim ~procs:2 [| max_int |]);
       false
     with Invalid_argument _ -> true)

let test_bitonic_balanced_load () =
  (* Bitonic keeps blocks equal; hyperquicksort does not — both must still
     sort the skewed input. *)
  let a = Array.append (Array.make 100 1) (Array.make 10 999999) in
  let s1, _ = Bitonic.sort_sim ~procs:4 a in
  let s2, _ = Hyperquicksort.sort_sim ~procs:4 a in
  Alcotest.(check (array int)) "bitonic" (sorted_copy a) s1;
  Alcotest.(check (array int)) "hqs" (sorted_copy a) s2

let test_sort_comparison_shape () =
  (* The "best available speedup" context of Figure 3: hyperquicksort should
     not be slower than the full-volume baselines on the paper's workload. *)
  let rng = Runtime.Xoshiro.of_seed 21 in
  let a = Runtime.Xoshiro.int_array rng ~len:30_000 ~bound:1_000_000 in
  let t f =
    let _, (s : Machine.Sim.stats) = f () in
    s.makespan
  in
  let h = t (fun () -> Hyperquicksort.sort_sim ~procs:16 a) in
  let p = t (fun () -> Sample_sort.sort_sim ~procs:16 a) in
  let b = t (fun () -> Bitonic.sort_sim ~procs:16 a) in
  Alcotest.(check bool) "hqs <= psrs" true (h <= p);
  Alcotest.(check bool) "hqs <= bitonic" true (h <= b)

(* --- histogram ------------------------------------------------------------------ *)

let random_floats ~seed n =
  let rng = Runtime.Xoshiro.of_seed seed in
  Array.init n (fun _ -> Runtime.Xoshiro.float rng 10.0 -. 5.0)

let prop_histogram_scl_matches_seq =
  qtest ~count:40 "host-SCL histogram = sequential"
    QCheck.(triple (int_range 0 200) (int_range 1 16) (int_range 0 100))
    (fun (n, buckets, seed) ->
      let xs = random_floats ~seed n in
      Histogram.histogram_scl ~buckets ~lo:(-5.0) ~hi:5.0 xs
      = Histogram.histogram_seq ~buckets ~lo:(-5.0) ~hi:5.0 xs)

let prop_histogram_sim_matches_seq =
  qtest ~count:20 "simulated histogram = sequential"
    QCheck.(triple (int_range 0 200) (int_range 1 12) (int_range 1 8))
    (fun (n, buckets, procs) ->
      let xs = random_floats ~seed:(n + buckets) n in
      let got, _ = Histogram.histogram_sim ~procs ~buckets ~lo:(-5.0) ~hi:5.0 xs in
      got = Histogram.histogram_seq ~buckets ~lo:(-5.0) ~hi:5.0 xs)

let test_histogram_counts_everything () =
  let xs = random_floats ~seed:3 1000 in
  let h = Histogram.histogram_scl ~buckets:7 ~lo:(-5.0) ~hi:5.0 xs in
  Alcotest.(check int) "total count preserved" 1000 (Array.fold_left ( + ) 0 h)

let test_histogram_clamps_outliers () =
  let h = Histogram.histogram_seq ~buckets:4 ~lo:0.0 ~hi:1.0 [| -3.0; 0.5; 99.0 |] in
  Alcotest.(check (array int)) "ends absorb outliers" [| 1; 0; 1; 1 |] h

let test_histogram_invalid () =
  Alcotest.(check bool) "0 buckets" true
    (try
       ignore (Histogram.histogram_seq ~buckets:0 ~lo:0.0 ~hi:1.0 [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty range" true
    (try
       ignore (Histogram.histogram_seq ~buckets:3 ~lo:1.0 ~hi:1.0 [||]);
       false
     with Invalid_argument _ -> true)

(* --- nbody ---------------------------------------------------------------------- *)

let test_nbody_scl_matches_seq () =
  let bodies = Nbody.random_bodies ~seed:4 60 in
  Alcotest.(check bool) "farm = sequential" true
    (Nbody.accel_close (Nbody.accelerations_scl bodies) (Nbody.accelerations_seq bodies)
       ~eps:1e-12)

let prop_nbody_sim_matches_seq =
  qtest ~count:10 "simulated n-body = sequential"
    QCheck.(pair (int_range 1 40) (int_range 1 8))
    (fun (n, procs) ->
      let bodies = Nbody.random_bodies ~seed:n n in
      let got, _ = Nbody.accelerations_sim ~procs bodies in
      Nbody.accel_close got (Nbody.accelerations_seq bodies) ~eps:1e-9)

let test_nbody_pool_matches_seq () =
  let pool = Runtime.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let bodies = Nbody.random_bodies ~seed:9 80 in
      Alcotest.(check bool) "dynamic farm = sequential" true
        (Nbody.accel_close (Nbody.accelerations_pool pool bodies) (Nbody.accelerations_seq bodies)
           ~eps:1e-12))

let test_nbody_sim_scaling () =
  let bodies = Nbody.random_bodies ~seed:5 256 in
  let time p =
    let _, s = Nbody.accelerations_sim ~procs:p bodies in
    s.Machine.Sim.makespan
  in
  Alcotest.(check bool) "compute-bound scaling" true (time 8 < time 2 && time 2 < time 1)

(* --- heat2d -------------------------------------------------------------------- *)

let test_heat2d_scl_matches_seq () =
  let f = Heat2d.manufactured_f 12 in
  let r0 = Heat2d.solve_seq ~tol:1e-8 f in
  let r1 = Heat2d.solve_scl ~grid:3 ~tol:1e-8 f in
  Alcotest.(check bool) "solutions agree" true (mat_close r0.solution r1.solution);
  Alcotest.(check int) "iteration counts agree" r0.iterations r1.iterations

let prop_heat2d_sim_matches_seq =
  qtest ~count:6 "simulated 2-D heat = sequential"
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (q, scale) ->
      let n = q * scale * 2 in
      let f = Heat2d.manufactured_f n in
      let r0 = Heat2d.solve_seq ~tol:1e-6 ~max_iter:5_000 f in
      let r1, _ = Heat2d.solve_sim ~procs:(q * q) ~tol:1e-6 ~max_iter:5_000 f in
      mat_close r0.solution r1.solution && r0.iterations = r1.iterations)

let test_heat2d_analytic () =
  let n = 20 in
  let r = Heat2d.solve_scl ~grid:2 ~tol:1e-9 ~max_iter:100_000 (Heat2d.manufactured_f n) in
  let err = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> err := Float.max !err (Float.abs (v -. Heat2d.manufactured_u n i j))) row)
    r.solution;
  (* second-order discretisation error at h = 1/21 *)
  Alcotest.(check bool) "close to sin*sin" true (!err < 5e-3)

let test_heat2d_bad_grid () =
  Alcotest.(check bool) "grid must divide n" true
    (try
       ignore (Heat2d.solve_scl ~grid:5 (Heat2d.manufactured_f 12));
       false
     with Invalid_argument _ -> true)

(* --- farm_sim ------------------------------------------------------------------- *)

let test_farm_static_dynamic_agree () =
  let spec = Farm_sim.skewed_spec ~njobs:64 ~skew:10 in
  let r1, _ = Farm_sim.static ~procs:8 spec in
  let r2, _ = Farm_sim.dynamic ~procs:8 spec in
  Alcotest.(check (array int)) "same results" r1 r2;
  Alcotest.(check (array int)) "correct results" (Array.init 64 (fun i -> i * i)) r1

let test_farm_dynamic_balances_skew () =
  let spec = Farm_sim.skewed_spec ~njobs:64 ~skew:20 in
  let _, s_static = Farm_sim.static ~procs:8 spec in
  let _, s_dynamic = Farm_sim.dynamic ~procs:8 spec in
  Alcotest.(check bool) "dynamic wins under skew" true
    (s_dynamic.Machine.Sim.makespan < s_static.Machine.Sim.makespan)

let test_farm_static_wins_uniform () =
  (* With uniform tiny jobs the demand-driven round trips dominate. *)
  let spec = { Farm_sim.njobs = 64; run = (fun i -> i); flops = (fun _ -> 500) } in
  let _, s_static = Farm_sim.static ~procs:8 spec in
  let _, s_dynamic = Farm_sim.dynamic ~procs:8 spec in
  Alcotest.(check bool) "static wins when uniform" true
    (s_static.Machine.Sim.makespan < s_dynamic.Machine.Sim.makespan)

let test_farm_dynamic_needs_two_procs () =
  Alcotest.(check bool) "procs=1 rejected" true
    (try
       ignore (Farm_sim.dynamic ~procs:1 (Farm_sim.skewed_spec ~njobs:4 ~skew:2));
       false
     with Invalid_argument _ -> true)

let test_farm_zero_jobs () =
  let spec = { Farm_sim.njobs = 0; run = (fun i -> i); flops = (fun _ -> 1) } in
  let r1, _ = Farm_sim.static ~procs:4 spec in
  let r2, _ = Farm_sim.dynamic ~procs:4 spec in
  Alcotest.(check (array int)) "static empty" [||] r1;
  Alcotest.(check (array int)) "dynamic empty" [||] r2

let test_farm_grace_is_free_when_fault_free () =
  (* arming the failure detector must not change a healthy run's results *)
  let spec = Farm_sim.skewed_spec ~njobs:48 ~skew:10 in
  let r0, _ = Farm_sim.dynamic ~procs:6 spec in
  let r1, _ = Farm_sim.dynamic ~procs:6 ~grace:0.5 spec in
  Alcotest.(check bool) "same results" true (r0 = r1)

let test_farm_survives_worker_crash_sim () =
  (* rank 2 fail-stops mid-job: the master re-deals the stranded job and the
     result set is still complete, with at least one reassignment counted *)
  let njobs = 30 in
  let spec = Farm_sim.skewed_spec ~njobs ~skew:6 in
  let expected = Array.init njobs (fun i -> i * i) in
  let reassign = Obs.Counter.make "farm.reassignments" in
  Obs.enable ();
  let before = Obs.Counter.value reassign in
  let chaos = { Machine.Chaos.none with Machine.Chaos.crashes = [ (2, 5) ] } in
  let got, _ = Farm_sim.dynamic ~procs:4 ~grace:0.5 ~chaos spec in
  let after = Obs.Counter.value reassign in
  Obs.disable ();
  Alcotest.(check bool) "all jobs done exactly once" true (got = expected);
  Alcotest.(check bool) "stranded job re-dealt" true (after > before)

let test_farm_straggler_redispatch_sim () =
  (* a stalling (not crashed) worker: results are identical; any duplicate
     results from re-dealt jobs are deduplicated, not double-counted *)
  let njobs = 24 in
  let spec = Farm_sim.skewed_spec ~njobs ~skew:4 in
  let expected = Array.init njobs (fun i -> i * i) in
  let chaos = { Machine.Chaos.none with Machine.Chaos.stalls = [ (3, 0.002) ] } in
  let got, _ = Farm_sim.dynamic ~procs:4 ~grace:0.5 ~chaos spec in
  Alcotest.(check bool) "straggler does not corrupt results" true (got = expected)

let test_farm_all_workers_lost_fails_loudly () =
  (* every worker crashes before finishing: the master must abort with a
     clear error instead of hanging or reporting partial results *)
  let spec = Farm_sim.skewed_spec ~njobs:16 ~skew:2 in
  let chaos = { Machine.Chaos.none with Machine.Chaos.crashes = [ (1, 3); (2, 3) ] } in
  Alcotest.(check bool) "loud failure" true
    (try
       ignore (Farm_sim.dynamic ~procs:3 ~grace:0.05 ~chaos spec);
       false
     with Failure msg ->
       let n = String.length "Farm_sim.dynamic" in
       String.length msg >= n && String.sub msg 0 n = "Farm_sim.dynamic")

(* --- fft ------------------------------------------------------------------------- *)

let prop_fft_matches_dft =
  qtest ~count:30 "skeleton FFT = naive DFT"
    QCheck.(pair (int_range 0 7) (int_range 0 100))
    (fun (bits, seed) ->
      let a = Fft.random_signal ~seed (1 lsl bits) in
      Fft.complex_close (Fft.fft_scl a) (Fft.dft_naive a) ~eps:1e-7)

let prop_fft_roundtrip =
  qtest ~count:30 "ifft (fft x) = x"
    QCheck.(pair (int_range 0 8) (int_range 0 100))
    (fun (bits, seed) ->
      let a = Fft.random_signal ~seed (1 lsl bits) in
      Fft.complex_close (Fft.ifft_scl (Fft.fft_scl a)) a ~eps:1e-9)

let prop_fft_sim_matches_host =
  qtest ~count:12 "simulated FFT = host FFT"
    QCheck.(pair (int_range 0 6) (int_range 1 8))
    (fun (bits, procs) ->
      let a = Fft.random_signal ~seed:(bits + procs) (1 lsl bits) in
      let got, _ = Fft.fft_sim ~procs a in
      Fft.complex_close got (Fft.fft_scl a) ~eps:1e-9)

let test_fft_impulse () =
  (* FFT of a unit impulse is the all-ones vector. *)
  let n = 16 in
  let a = Array.init n (fun i -> if i = 0 then Complex.one else Complex.zero) in
  let f = Fft.fft_scl a in
  Alcotest.(check bool) "flat spectrum" true
    (Array.for_all (fun c -> Float.abs (c.Complex.re -. 1.0) < 1e-12 && Float.abs c.im < 1e-12) f)

let test_fft_linearity () =
  let a = Fft.random_signal ~seed:1 32 and b = Fft.random_signal ~seed:2 32 in
  let sum = Array.map2 Complex.add a b in
  let lhs = Fft.fft_scl sum in
  let rhs = Array.map2 Complex.add (Fft.fft_scl a) (Fft.fft_scl b) in
  Alcotest.(check bool) "linear" true (Fft.complex_close lhs rhs ~eps:1e-9)

let test_fft_rejects_non_power_of_two () =
  Alcotest.(check bool) "length 12 rejected" true
    (try
       ignore (Fft.fft_scl (Fft.random_signal ~seed:0 12));
       false
     with Invalid_argument _ -> true)

let test_bit_reverse () =
  Alcotest.(check int) "0b001 -> 0b100" 4 (Fft.bit_reverse ~bits:3 1);
  Alcotest.(check int) "0b110 -> 0b011" 3 (Fft.bit_reverse ~bits:3 6);
  Alcotest.(check bool) "involution" true
    (List.for_all (fun i -> Fft.bit_reverse ~bits:5 (Fft.bit_reverse ~bits:5 i) = i)
       (List.init 32 Fun.id))

(* --- conjugate gradients ---------------------------------------------------------- *)

let prop_cg_solves =
  qtest ~count:20 "CG solves the Laplacian system"
    QCheck.(pair (int_range 1 60) (int_range 0 50))
    (fun (n, seed) ->
      let rng = Runtime.Xoshiro.of_seed seed in
      let b = Array.init n (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
      let r = Cg.solve_seq ~tol:1e-11 b in
      Cg.residual_inf r.solution b < 1e-7)

let test_cg_scl_matches_seq () =
  let rng = Runtime.Xoshiro.of_seed 17 in
  let b = Array.init 80 (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
  let r0 = Cg.solve_seq ~tol:1e-10 b in
  let r1 = Cg.solve_scl ~tol:1e-10 b in
  Alcotest.(check int) "same iterations" r0.iterations r1.iterations;
  Alcotest.(check bool) "same solution" true
    (Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) r0.solution r1.solution)

let prop_cg_sim_matches_seq =
  qtest ~count:8 "simulated CG = sequential"
    QCheck.(pair (int_range 1 40) (int_range 1 6))
    (fun (n, procs) ->
      let rng = Runtime.Xoshiro.of_seed (n + procs) in
      let b = Array.init n (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
      let r0 = Cg.solve_seq ~tol:1e-10 b in
      let r1, _ = Cg.solve_sim ~procs ~tol:1e-10 b in
      Cg.residual_inf r1.solution b < 1e-7 && abs (r0.iterations - r1.iterations) <= 2)

let test_cg_matches_gauss () =
  (* Cross-check against the dense Gauss–Jordan solver on the same system. *)
  let n = 24 in
  let rng = Runtime.Xoshiro.of_seed 9 in
  let b = Array.init n (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 2.0 else if abs (i - j) = 1 then -1.0 else 0.0))
  in
  let x_dense = Seq_kernels.gauss_seq a b in
  let x_cg = (Cg.solve_seq ~tol:1e-12 b).solution in
  Alcotest.(check bool) "CG = Gauss on tridiagonal" true
    (Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-7) x_dense x_cg)

let test_cg_empty () =
  let r = Cg.solve_scl [||] in
  Alcotest.(check int) "no iterations" 0 r.iterations

(* --- k-means ------------------------------------------------------------------------ *)

let kmeans_setup seed =
  let points, centres = Kmeans.blobs ~seed ~k:4 ~per_cluster:50 in
  let init = Array.init 4 (fun i -> points.(i * 50)) in
  (points, centres, init)

let test_kmeans_seq_converges () =
  let points, centres, init = kmeans_setup 5 in
  let r = Kmeans.run_seq ~k:4 points ~init in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check bool) "centroids near the true centres" true
    (Array.for_all
       (fun c -> Array.exists (fun t -> Kmeans.dist2 c t < 1.0) centres)
       r.centroids)

let test_kmeans_scl_matches_seq () =
  let points, _, init = kmeans_setup 6 in
  let r0 = Kmeans.run_seq ~k:4 points ~init in
  let r1 = Kmeans.run_scl ~parts:4 ~k:4 points ~init in
  Alcotest.(check (array int)) "assignments agree" r0.assignment r1.assignment

let prop_kmeans_sim_matches_seq =
  qtest ~count:8 "simulated k-means = sequential assignment"
    QCheck.(pair (int_range 1 6) (int_range 0 30))
    (fun (procs, seed) ->
      let points, _, init = kmeans_setup seed in
      let r0 = Kmeans.run_seq ~k:4 points ~init in
      let r1, _ = Kmeans.run_sim ~procs ~k:4 points ~init in
      r1.assignment = r0.assignment)

let test_kmeans_partitions_points () =
  let points, _, init = kmeans_setup 7 in
  let r = Kmeans.run_seq ~k:4 points ~init in
  Alcotest.(check int) "every point labelled" (Array.length points) (Array.length r.assignment);
  Alcotest.(check bool) "labels in range" true
    (Array.for_all (fun l -> l >= 0 && l < 4) r.assignment)

let test_kmeans_invalid () =
  Alcotest.(check bool) "k=0" true
    (try
       ignore (Kmeans.run_seq ~k:0 [||] ~init:[||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong init size" true
    (try
       ignore (Kmeans.run_seq ~k:2 [||] ~init:[| { Kmeans.x = 0.0; y = 0.0 } |]);
       false
     with Invalid_argument _ -> true)

(* --- odd-even transposition ------------------------------------------------------- *)

let prop_odd_even_sorts =
  qtest ~count:30 "odd-even transposition sorts on a ring"
    QCheck.(pair (list int) (int_range 1 9))
    (fun (xs, procs) ->
      let a = Array.of_list xs in
      let sorted, _ = Odd_even.sort_sim ~procs a in
      sorted = sorted_copy a)

let test_odd_even_is_all_nearest_neighbour () =
  (* On a ring, every exchange must be a single hop: compare against a star
     topology where leaf-to-leaf traffic costs 2 hops. *)
  let rng = Runtime.Xoshiro.of_seed 31 in
  let a = Runtime.Xoshiro.int_array rng ~len:4_000 ~bound:100_000 in
  let _, ring = Odd_even.sort_sim ~topology:Machine.Topology.Ring ~procs:8 a in
  let _, star = Odd_even.sort_sim ~topology:Machine.Topology.Star ~procs:8 a in
  Alcotest.(check bool) "ring at least as fast" true
    (ring.Machine.Sim.makespan <= star.Machine.Sim.makespan)

let test_odd_even_vs_hqs_on_ring () =
  (* Hyperquicksort's cube exchanges pay long hops on a ring; odd-even's
     neighbour traffic does not. At high latency-per-hop the ring-native
     sort must win. *)
  let rng = Runtime.Xoshiro.of_seed 32 in
  let a = Runtime.Xoshiro.int_array rng ~len:8_000 ~bound:1_000_000 in
  let hoppy = { Machine.Cost_model.ap1000 with per_hop = 1000e-6 } in
  let _, oe = Odd_even.sort_sim ~cost:hoppy ~topology:Machine.Topology.Ring ~procs:16 a in
  let _, hq = Hyperquicksort.sort_sim ~cost:hoppy ~topology:Machine.Topology.Ring ~procs:16 a in
  Alcotest.(check bool) "odd-even wins on a high-latency ring" true
    (oe.Machine.Sim.makespan < hq.Machine.Sim.makespan)

(* --- line of sight ----------------------------------------------------------------- *)

let random_terrain ~seed n =
  let rng = Runtime.Xoshiro.of_seed seed in
  Array.init n (fun _ -> Runtime.Xoshiro.float rng 100.0)

let prop_los_scl_matches_seq =
  qtest ~count:50 "scan-based line of sight = sequential"
    QCheck.(pair (int_range 0 200) (int_range 0 50))
    (fun (n, seed) ->
      let t = random_terrain ~seed n in
      Line_of_sight.visible_scl t = Line_of_sight.visible_seq t)

let prop_los_sim_matches_seq =
  qtest ~count:20 "simulated line of sight = sequential"
    QCheck.(triple (int_range 0 120) (int_range 1 8) (int_range 0 20))
    (fun (n, procs, seed) ->
      let t = random_terrain ~seed n in
      let got, _ = Line_of_sight.visible_sim ~procs t in
      got = Line_of_sight.visible_seq t)

let test_los_monotone_ridge () =
  (* convex terrain (heights i^2): viewing angles strictly increase, so
     everything is visible *)
  let t = Array.init 50 (fun i -> float_of_int (i * i)) in
  Alcotest.(check bool) "all visible" true (Array.for_all Fun.id (Line_of_sight.visible_seq t));
  (* a wall at index 1 hides all lower flat ground behind it *)
  let wall = Array.append [| 0.0; 100.0 |] (Array.make 40 0.0) in
  let v = Line_of_sight.visible_scl wall in
  Alcotest.(check bool) "observer and wall visible" true (v.(0) && v.(1));
  Alcotest.(check bool) "plain behind the wall hidden" true
    (not (Array.exists Fun.id (Array.sub v 2 40)))

(* --- flat tier ------------------------------------------------------------------
   The unboxed Bigarray ports of jacobi/heat2d/cg must be bitwise-identical
   to their boxed oracles at the same process count: same block geometry,
   same local summation order, same stencil expression shape, so every
   intermediate float — and hence the iteration count and each solution
   component — is exactly equal, not merely close. *)

let vec_bitwise a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> Float.equal x y) a b

let test_jacobi_flat_bitwise_sim () =
  let f = Array.init 37 (fun j -> float_of_int ((j * 5 mod 11) - 4)) in
  List.iter
    (fun procs ->
      let r0, _ = Jacobi.solve_sim ~procs ~tol:1e-8 f ~left:0.75 ~right:(-0.5) in
      let r1, _ = Jacobi.solve_sim_flat ~procs ~tol:1e-8 f ~left:0.75 ~right:(-0.5) in
      Alcotest.(check int)
        (Printf.sprintf "iterations p=%d" procs)
        r0.Jacobi.iterations r1.Jacobi.iterations;
      Alcotest.(check bool)
        (Printf.sprintf "bitwise solution p=%d" procs)
        true
        (vec_bitwise r0.Jacobi.solution r1.Jacobi.solution))
    [ 1; 2; 4 ]

let test_heat2d_flat_bitwise_sim () =
  let n = 12 in
  let f = Array.init n (fun i -> Array.init n (fun j -> float_of_int ((i + (2 * j)) mod 5))) in
  List.iter
    (fun procs ->
      let r0, _ = Heat2d.solve_sim ~procs ~tol:1e-7 f in
      let r1, _ = Heat2d.solve_sim_flat ~procs ~tol:1e-7 f in
      Alcotest.(check int)
        (Printf.sprintf "iterations p=%d" procs)
        r0.Heat2d.iterations r1.Heat2d.iterations;
      Alcotest.(check bool)
        (Printf.sprintf "bitwise solution p=%d" procs)
        true
        (Array.for_all2 vec_bitwise r0.Heat2d.solution r1.Heat2d.solution))
    [ 1; 4 ]

let test_cg_flat_bitwise_sim () =
  let rng = Runtime.Xoshiro.of_seed 23 in
  let b = Array.init 41 (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
  List.iter
    (fun procs ->
      let r0, _ = Cg.solve_sim ~procs ~tol:1e-10 b in
      let r1, _ = Cg.solve_sim_flat ~procs ~tol:1e-10 b in
      Alcotest.(check int)
        (Printf.sprintf "iterations p=%d" procs)
        r0.Cg.iterations r1.Cg.iterations;
      Alcotest.(check bool)
        (Printf.sprintf "bitwise solution p=%d" procs)
        true
        (vec_bitwise r0.Cg.solution r1.Cg.solution))
    [ 1; 2; 4 ]

let test_jacobi_flat_multicore_bitwise () =
  let f = Array.init 29 (fun j -> float_of_int ((j * 3 mod 7) - 2)) in
  let r0, _ = Jacobi.solve_sim_flat ~procs:3 ~tol:1e-8 f ~left:0.25 ~right:0.5 in
  let r1, _ = Jacobi.solve_multicore_flat ~procs:3 ~tol:1e-8 f ~left:0.25 ~right:0.5 in
  Alcotest.(check int) "iterations" r0.Jacobi.iterations r1.Jacobi.iterations;
  Alcotest.(check bool) "bitwise solution" true (vec_bitwise r0.Jacobi.solution r1.Jacobi.solution)

let test_cg_flat_multicore_bitwise () =
  let rng = Runtime.Xoshiro.of_seed 31 in
  let b = Array.init 26 (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
  let r0, _ = Cg.solve_sim_flat ~procs:3 ~tol:1e-10 b in
  let r1, _ = Cg.solve_multicore_flat ~procs:3 ~tol:1e-10 b in
  Alcotest.(check int) "iterations" r0.Cg.iterations r1.Cg.iterations;
  Alcotest.(check bool) "bitwise solution" true (vec_bitwise r0.Cg.solution r1.Cg.solution)

let test_heat2d_flat_multicore_bitwise () =
  let n = 9 in
  let f = Array.init n (fun i -> Array.init n (fun j -> float_of_int ((i * j) mod 4))) in
  let r0, _ = Heat2d.solve_sim_flat ~procs:3 ~tol:1e-6 f in
  let r1, _ = Heat2d.solve_multicore_flat ~procs:3 ~tol:1e-6 f in
  Alcotest.(check int) "iterations" r0.Heat2d.iterations r1.Heat2d.iterations;
  Alcotest.(check bool) "bitwise solution" true
    (Array.for_all2 vec_bitwise r0.Heat2d.solution r1.Heat2d.solution)

let () =
  Alcotest.run "algorithms"
    [
      ( "seq_kernels",
        [
          prop_quicksort_sorts;
          Alcotest.test_case "quicksort pure" `Quick test_quicksort_preserves_input;
          Alcotest.test_case "midvalue" `Quick test_midvalue;
          prop_split_at;
          prop_merge;
          Alcotest.test_case "is_sorted" `Quick test_is_sorted;
          Alcotest.test_case "partial pivot" `Quick test_partial_pivot;
          Alcotest.test_case "gauss_seq small" `Quick test_gauss_seq_small;
          Alcotest.test_case "gauss_seq singular" `Quick test_gauss_seq_singular;
          Alcotest.test_case "gauss_seq pivoting" `Quick test_gauss_seq_needs_pivoting;
          prop_matmul_identity;
        ] );
      ( "hyperquicksort",
        [
          prop_hqs_recursive_sorts;
          prop_hqs_flat_sorts;
          prop_hqs_flat_equals_recursive;
          prop_hqs_sim_sorts;
          Alcotest.test_case "adversarial inputs" `Quick test_hqs_adversarial_inputs;
          Alcotest.test_case "non-power-of-two rejected" `Quick test_hqs_sim_rejects_non_power_of_two;
          Alcotest.test_case "pool backend" `Slow test_hqs_pool_backend;
          Alcotest.test_case "speedup shape" `Slow test_hqs_sim_speedup_shape;
          Alcotest.test_case "simulator deterministic" `Quick test_hqs_sim_deterministic;
          Alcotest.test_case "figure-2 trace" `Quick test_hqs_traced_figure2;
          prop_hqs_flatint_equals_boxed_sim;
          Alcotest.test_case "flat-int adversarial inputs" `Quick test_hqs_flatint_adversarial;
          Alcotest.test_case "flat-int multicore" `Slow test_hqs_flatint_multicore;
        ] );
      ( "gauss",
        [
          Alcotest.test_case "SCL matches sequential" `Quick test_gauss_scl_matches_seq;
          prop_gauss_scl_residual;
          prop_gauss_sim_residual;
          Alcotest.test_case "sim matches SCL" `Quick test_gauss_sim_matches_scl;
          Alcotest.test_case "pivoting required" `Quick test_gauss_needs_pivoting_parallel;
          Alcotest.test_case "singular detected" `Quick test_gauss_singular_parallel;
          Alcotest.test_case "sim scaling" `Slow test_gauss_sim_scaling;
        ] );
      ( "cannon",
        [
          prop_cannon_scl_matches_seq;
          prop_cannon_sim_matches_seq;
          Alcotest.test_case "bad grid rejected" `Quick test_cannon_rejects_bad_grid;
          Alcotest.test_case "sim scaling" `Slow test_cannon_sim_scaling;
        ] );
      ( "jacobi",
        [
          Alcotest.test_case "SCL matches sequential" `Quick test_jacobi_scl_matches_seq;
          prop_jacobi_sim_matches_seq;
          Alcotest.test_case "analytic solution" `Slow test_jacobi_converges_to_analytic;
          Alcotest.test_case "max_iter respected" `Quick test_jacobi_max_iter_respected;
          Alcotest.test_case "empty problem" `Quick test_jacobi_empty;
        ] );
      ( "baseline_sorts",
        [
          prop_psrs_scl_sorts;
          prop_psrs_sim_sorts;
          prop_bitonic_sim_sorts;
          Alcotest.test_case "bitonic sentinel guard" `Quick test_bitonic_rejects_sentinel;
          Alcotest.test_case "skewed load" `Quick test_bitonic_balanced_load;
          Alcotest.test_case "comparison shape" `Slow test_sort_comparison_shape;
        ] );
      ( "histogram",
        [
          prop_histogram_scl_matches_seq;
          prop_histogram_sim_matches_seq;
          Alcotest.test_case "counts preserved" `Quick test_histogram_counts_everything;
          Alcotest.test_case "outliers clamp" `Quick test_histogram_clamps_outliers;
          Alcotest.test_case "invalid args" `Quick test_histogram_invalid;
        ] );
      ( "nbody",
        [
          Alcotest.test_case "farm = sequential" `Quick test_nbody_scl_matches_seq;
          prop_nbody_sim_matches_seq;
          Alcotest.test_case "pool farm" `Slow test_nbody_pool_matches_seq;
          Alcotest.test_case "sim scaling" `Slow test_nbody_sim_scaling;
        ] );
      ( "heat2d",
        [
          Alcotest.test_case "SCL matches sequential" `Slow test_heat2d_scl_matches_seq;
          prop_heat2d_sim_matches_seq;
          Alcotest.test_case "analytic solution" `Slow test_heat2d_analytic;
          Alcotest.test_case "bad grid rejected" `Quick test_heat2d_bad_grid;
        ] );
      ( "farm_sim",
        [
          Alcotest.test_case "static = dynamic results" `Quick test_farm_static_dynamic_agree;
          Alcotest.test_case "dynamic wins under skew" `Quick test_farm_dynamic_balances_skew;
          Alcotest.test_case "static wins when uniform" `Quick test_farm_static_wins_uniform;
          Alcotest.test_case "dynamic needs 2 procs" `Quick test_farm_dynamic_needs_two_procs;
          Alcotest.test_case "zero jobs" `Quick test_farm_zero_jobs;
          Alcotest.test_case "grace free when fault-free" `Quick test_farm_grace_is_free_when_fault_free;
          Alcotest.test_case "survives worker crash" `Quick test_farm_survives_worker_crash_sim;
          Alcotest.test_case "straggler redispatch" `Quick test_farm_straggler_redispatch_sim;
          Alcotest.test_case "all workers lost fails loudly" `Quick
            test_farm_all_workers_lost_fails_loudly;
        ] );
      ( "fft",
        [
          prop_fft_matches_dft;
          prop_fft_roundtrip;
          prop_fft_sim_matches_host;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "linearity" `Quick test_fft_linearity;
          Alcotest.test_case "non-power-of-two rejected" `Quick test_fft_rejects_non_power_of_two;
          Alcotest.test_case "bit reversal" `Quick test_bit_reverse;
        ] );
      ( "cg",
        [
          prop_cg_solves;
          Alcotest.test_case "SCL matches sequential" `Quick test_cg_scl_matches_seq;
          prop_cg_sim_matches_seq;
          Alcotest.test_case "CG = Gauss cross-check" `Quick test_cg_matches_gauss;
          Alcotest.test_case "empty system" `Quick test_cg_empty;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "converges to blobs" `Quick test_kmeans_seq_converges;
          Alcotest.test_case "SCL matches sequential" `Quick test_kmeans_scl_matches_seq;
          prop_kmeans_sim_matches_seq;
          Alcotest.test_case "labels well-formed" `Quick test_kmeans_partitions_points;
          Alcotest.test_case "invalid args" `Quick test_kmeans_invalid;
        ] );
      ( "line_of_sight",
        [
          prop_los_scl_matches_seq;
          prop_los_sim_matches_seq;
          Alcotest.test_case "ridge and wall" `Quick test_los_monotone_ridge;
        ] );
      ( "odd_even",
        [
          prop_odd_even_sorts;
          Alcotest.test_case "nearest-neighbour traffic" `Quick test_odd_even_is_all_nearest_neighbour;
          Alcotest.test_case "wins on high-latency ring" `Slow test_odd_even_vs_hqs_on_ring;
        ] );
      ( "flat-tier",
        [
          Alcotest.test_case "jacobi flat = boxed (sim, bitwise)" `Quick
            test_jacobi_flat_bitwise_sim;
          Alcotest.test_case "heat2d flat = boxed (sim, bitwise)" `Quick
            test_heat2d_flat_bitwise_sim;
          Alcotest.test_case "cg flat = boxed (sim, bitwise)" `Quick test_cg_flat_bitwise_sim;
          Alcotest.test_case "jacobi flat multicore = sim" `Quick
            test_jacobi_flat_multicore_bitwise;
          Alcotest.test_case "cg flat multicore = sim" `Quick test_cg_flat_multicore_bitwise;
          Alcotest.test_case "heat2d flat multicore = sim" `Quick
            test_heat2d_flat_multicore_bitwise;
        ] );
    ]
