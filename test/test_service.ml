(* The elastic skeleton service (lib/service): admission control,
   backpressure, coalescing, batching, elastic membership and
   crash-tolerance of the long-lived farm, on both engines. *)

open Machine

let job_flops = 2_000
let job_s = Cost_model.flops Cost_model.ap1000 job_flops

let workload ?(arrivals = 40) ?(gap = fun _ _ -> 0.0) ?(job_of = fun g -> g) () =
  {
    Service.arrivals;
    gap;
    job_of;
    run = (fun k -> k * k);
    flops = (fun _ -> job_flops);
  }

let steady_gap frac workers clients =
  let capacity = float_of_int workers /. job_s in
  fun _ _ -> float_of_int clients /. (frac *. capacity)

(* --- admission ---------------------------------------------------------- *)

(* Closed loop: a burst far larger than the queue bound, one slow worker.
   Blocked producers must throttle instead of overflowing: the queue never
   exceeds the bound, nothing is shed, and every submission completes. *)
let test_backpressure_respects_bound () =
  let cfg = Service.default ~clients:1 ~queue_bound:3 ~batch:1 ~admission:Service.Block () in
  let r, _ = Service.run_sim ~procs:3 cfg (workload ~arrivals:30 ()) in
  Alcotest.(check int) "submitted" 30 r.Service.submitted;
  Alcotest.(check int) "completed" 30 r.Service.completed;
  Alcotest.(check int) "rejected" 0 r.Service.rejected;
  Alcotest.(check bool) "depth bounded" true (r.Service.max_queue_depth <= 3)

(* Open loop at the same burst: the bound is enforced by shedding loudly
   instead, and everything admitted still completes. *)
let test_shed_rejects_at_bound () =
  let cfg = Service.default ~clients:1 ~queue_bound:3 ~batch:1 ~admission:Service.Shed () in
  let r, _ = Service.run_sim ~procs:3 cfg (workload ~arrivals:30 ()) in
  Alcotest.(check int) "submitted" 30 r.Service.submitted;
  Alcotest.(check bool) "shed some" true (r.Service.rejected > 0);
  Alcotest.(check bool) "depth bounded" true (r.Service.max_queue_depth <= 3);
  Alcotest.(check int) "completed = admitted + coalesced" r.Service.completed
    (r.Service.submitted - r.Service.rejected)

(* An unsaturated open-loop service sheds nothing and serves at the
   arrival rate with latency ~ one service time. *)
let test_underload_sheds_nothing () =
  let cfg = Service.default ~clients:2 ~queue_bound:8 ~batch:2 ~admission:Service.Shed () in
  let gap = steady_gap 0.4 2 2 in
  let r, _ = Service.run_sim ~procs:5 cfg (workload ~arrivals:25 ~gap ()) in
  Alcotest.(check int) "completed" 50 r.Service.completed;
  Alcotest.(check int) "rejected" 0 r.Service.rejected;
  Alcotest.(check bool) "p95 ~ service time" true (r.Service.p95 < 5.0 *. job_s)

(* --- coalescing --------------------------------------------------------- *)

(* Submissions sharing a job key while it is still pending attach to one
   execution: fewer executions than submissions, but every submission gets
   a result. *)
let test_coalescing_shares_executions () =
  let cfg = Service.default ~clients:1 ~queue_bound:16 ~batch:2 ~admission:Service.Block () in
  let wl = workload ~arrivals:40 ~job_of:(fun g -> g mod 4) () in
  let r, _ = Service.run_sim ~procs:3 cfg wl in
  Alcotest.(check int) "all submissions answered" 40 r.Service.completed;
  Alcotest.(check bool) "coalesced some" true (r.Service.coalesced > 0);
  Alcotest.(check int) "accepted + coalesced = submitted" 40
    (r.Service.accepted + r.Service.coalesced)

(* --- elastic membership ------------------------------------------------- *)

(* A worker leaves gracefully mid-run and rejoins after its away window;
   the master counts the leave and the rejoin and no submission is lost.
   Grace must dominate the away time (the membership contract). *)
let test_leave_and_rejoin () =
  let leaves = [ (2, { Service.after_jobs = 5; away = 30.0 *. job_s; permanent = false }) ] in
  let cfg =
    Service.default ~clients:1 ~queue_bound:16 ~batch:1 ~admission:Service.Block
      ~grace:(200.0 *. job_s) ~leaves ()
  in
  let gap _ _ = job_s /. 2.0 in
  let r, _ = Service.run_sim ~procs:4 cfg (workload ~arrivals:60 ~gap ()) in
  Alcotest.(check int) "completed" 60 r.Service.completed;
  Alcotest.(check int) "leaves" 1 r.Service.leaves;
  Alcotest.(check int) "joins" 1 r.Service.joins

(* A permanent leave shrinks the pool for good; the service still finishes
   on the remaining workers and never double-counts a result. *)
let test_permanent_leave_shrinks_pool () =
  let leaves = [ (3, { Service.after_jobs = 4; away = 0.0; permanent = true }) ] in
  let cfg =
    Service.default ~clients:1 ~queue_bound:16 ~batch:1 ~admission:Service.Block
      ~grace:(200.0 *. job_s) ~leaves ()
  in
  let r, _ = Service.run_sim ~procs:5 cfg (workload ~arrivals:40 ()) in
  Alcotest.(check int) "completed" 40 r.Service.completed;
  Alcotest.(check int) "leaves" 1 r.Service.leaves;
  Alcotest.(check int) "joins" 0 r.Service.joins

(* --- crash tolerance ---------------------------------------------------- *)

(* A worker fail-stops mid-run (time-scheduled Chaos crash).  At-least-once
   dispatch re-deals its stranded jobs after the grace and duplicates are
   dropped by key, so every submission is answered exactly once. *)
let test_chaos_crash_recovers_exactly_once () =
  let chaos = { Chaos.none with seed = 7; crashes_at = [ (3, 20.0 *. job_s) ] } in
  let cfg =
    Service.default ~clients:1 ~queue_bound:16 ~batch:2 ~admission:Service.Block
      ~grace:(50.0 *. job_s) ()
  in
  let gap _ _ = job_s /. 3.0 in
  let r, _ = Service.run_sim ~chaos ~procs:5 cfg (workload ~arrivals:50 ~gap ()) in
  Alcotest.(check int) "completed exactly once" 50 r.Service.completed;
  Alcotest.(check bool) "re-dealt after silence" true (r.Service.redeals >= 1)

(* Losing every worker with work outstanding must fail loudly, not hang. *)
let test_all_workers_lost_fails_loudly () =
  let chaos = { Chaos.none with seed = 7; crashes_at = [ (2, 5.0 *. job_s) ] } in
  let cfg =
    Service.default ~clients:1 ~queue_bound:16 ~batch:1 ~admission:Service.Block
      ~grace:(20.0 *. job_s) ()
  in
  let gap _ _ = job_s in
  Alcotest.check_raises "loud failure"
    (Failure "Service: all workers lost (no traffic within grace)") (fun () ->
      ignore (Service.run_sim ~chaos ~procs:3 cfg (workload ~arrivals:40 ~gap ())))

(* --- drain -------------------------------------------------------------- *)

(* After the last result the master must release every worker: the
   simulator itself proves the shutdown clean, because any undelivered
   message or still-blocked processor raises [Sim.Deadlock]. *)
let test_drain_releases_everyone () =
  let cfg = Service.default ~clients:2 ~queue_bound:8 ~batch:3 ~admission:Service.Block () in
  let r, _ = Service.run_sim ~procs:7 cfg (workload ~arrivals:20 ()) in
  Alcotest.(check int) "completed" 40 r.Service.completed

(* --- determinism -------------------------------------------------------- *)

(* The same seed (here: the same deterministic gap schedule and chaos
   spec) must reproduce the report bit-for-bit, timings included. *)
let test_sim_is_deterministic () =
  let chaos = { Chaos.none with seed = 11; delay_prob = 0.1; max_hold = 2 } in
  let leaves = [ (3, { Service.after_jobs = 6; away = 20.0 *. job_s; permanent = false }) ] in
  let cfg =
    Service.default ~clients:2 ~queue_bound:8 ~batch:2 ~admission:Service.Shed
      ~grace:(100.0 *. job_s) ~leaves ()
  in
  let gap c k = job_s *. (0.3 +. (0.1 *. float_of_int ((c + k) mod 5))) in
  let wl = workload ~arrivals:30 ~gap () in
  let r1, s1 = Service.run_sim ~chaos ~procs:6 cfg wl in
  let r2, s2 = Service.run_sim ~chaos ~procs:6 cfg wl in
  Alcotest.(check bool) "reports identical" true (r1 = r2);
  Alcotest.(check (float 0.0)) "makespans identical" s1.Sim.makespan s2.Sim.makespan

(* --- multicore ---------------------------------------------------------- *)

(* The same program body for real on domains: wall-clock latencies are not
   reproducible, but the counting invariants are. *)
let test_multicore_smoke () =
  let cfg = Service.default ~clients:1 ~queue_bound:8 ~batch:2 ~admission:Service.Block () in
  let r, _ = Service.run_multicore ~domains:2 ~procs:4 cfg (workload ~arrivals:20 ()) in
  Alcotest.(check int) "completed" 20 r.Service.completed;
  Alcotest.(check int) "rejected" 0 r.Service.rejected;
  Alcotest.(check bool) "latencies measured" true (r.Service.max_latency >= 0.0)

let test_multicore_shed_invariant () =
  let cfg = Service.default ~clients:2 ~queue_bound:2 ~batch:1 ~admission:Service.Shed () in
  let r, _ = Service.run_multicore ~domains:2 ~procs:5 cfg (workload ~arrivals:15 ()) in
  Alcotest.(check int) "answered = submitted - shed" r.Service.completed
    (r.Service.submitted - r.Service.rejected)

(* --- validation --------------------------------------------------------- *)

let test_config_validation () =
  let wl = workload () in
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "too few procs" (fun () ->
      Service.run_sim ~procs:2 (Service.default ()) wl);
  expect_invalid "zero bound" (fun () ->
      Service.run_sim ~procs:4 (Service.default ~queue_bound:0 ()) wl);
  expect_invalid "zero batch" (fun () ->
      Service.run_sim ~procs:4 (Service.default ~batch:0 ()) wl);
  expect_invalid "negative grace" (fun () ->
      Service.run_sim ~procs:4 (Service.default ~grace:(-1.0) ()) wl);
  expect_invalid "leave rank is the master" (fun () ->
      Service.run_sim ~procs:4
        (Service.default ~leaves:[ (0, { Service.after_jobs = 1; away = 0.0; permanent = true }) ] ())
        wl);
  expect_invalid "leave rank is a client" (fun () ->
      Service.run_sim ~procs:4
        (Service.default ~leaves:[ (1, { Service.after_jobs = 1; away = 0.0; permanent = true }) ] ())
        wl);
  expect_invalid "away negative" (fun () ->
      Service.run_sim ~procs:4
        (Service.default ~leaves:[ (2, { Service.after_jobs = 1; away = -0.1; permanent = false }) ]
           ())
        wl)

(* --- report JSON -------------------------------------------------------- *)

let test_report_json_shape () =
  let cfg = Service.default ~clients:1 ~queue_bound:4 ~batch:1 () in
  let r, _ = Service.run_sim ~procs:3 cfg (workload ~arrivals:10 ()) in
  match Service.report_to_json r with
  | Obs.Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true (List.mem_assoc key fields))
        [ "submitted"; "completed"; "rejected"; "duration_s"; "jobs_per_s"; "p99_s" ]
  | _ -> Alcotest.fail "report_to_json: expected an object"

let suite =
  [
    ( "admission",
      [
        Alcotest.test_case "backpressure respects bound" `Quick test_backpressure_respects_bound;
        Alcotest.test_case "shed rejects at bound" `Quick test_shed_rejects_at_bound;
        Alcotest.test_case "underload sheds nothing" `Quick test_underload_sheds_nothing;
      ] );
    ( "coalescing",
      [ Alcotest.test_case "shared executions" `Quick test_coalescing_shares_executions ] );
    ( "membership",
      [
        Alcotest.test_case "leave and rejoin" `Quick test_leave_and_rejoin;
        Alcotest.test_case "permanent leave" `Quick test_permanent_leave_shrinks_pool;
      ] );
    ( "faults",
      [
        Alcotest.test_case "crash recovers exactly-once" `Quick
          test_chaos_crash_recovers_exactly_once;
        Alcotest.test_case "all workers lost fails loudly" `Quick
          test_all_workers_lost_fails_loudly;
      ] );
    ("drain", [ Alcotest.test_case "clean shutdown" `Quick test_drain_releases_everyone ]);
    ( "determinism",
      [ Alcotest.test_case "same seed, same report" `Quick test_sim_is_deterministic ] );
    ( "multicore",
      [
        Alcotest.test_case "smoke" `Quick test_multicore_smoke;
        Alcotest.test_case "shed invariant" `Quick test_multicore_shed_invariant;
      ] );
    ("validation", [ Alcotest.test_case "config checks" `Quick test_config_validation ]);
    ("report", [ Alcotest.test_case "json shape" `Quick test_report_json_shape ]);
  ]

let () = Alcotest.run "service" suite
