(* Tests for the multi-process execution engine: the socket fabric (frame
   protocol, per-(source, tag) FIFO, marshal + raw-slice tiers), real
   crash detection (EOF without goodbye -> Fault.Crashed), the
   marshalable-payload discipline, engine equivalence of the Comm
   collectives and hyperquicksort against the simulator, and the
   crash-tolerant farm driven by real process deaths.

   This suite lives in its own executable on purpose: [Procs] forks, and
   forking an OCaml 5 process is only safe while no other domains are
   live — so nothing here (and nothing linked into this binary's test
   run) spawns domains or pools. *)

open Machine
module Spmd = Scl_sim.Spmd

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

(* --- fabric basics ------------------------------------------------------ *)

let test_single_rank () =
  let v, stats = Procs.run_collect ~procs:1 (fun eng -> Some (eng.Engine.rank + 41)) in
  Alcotest.(check int) "value" 41 v;
  Alcotest.(check int) "no messages" 0 stats.Procs.total_msgs;
  Alcotest.(check int) "one process" 1 stats.Procs.procs_used;
  Alcotest.(check (list int)) "no crashes" [] stats.Procs.crashed

let test_ping_pong () =
  let v, stats =
    Procs.run_collect ~procs:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:5 "ping";
          let (s : string) = eng.Engine.recv ~src:1 ~tag:6 () in
          Some s
        end
        else begin
          let (s : string) = eng.Engine.recv ~src:0 ~tag:5 () in
          eng.Engine.send ~dest:0 ~tag:6 (s ^ "-pong");
          None
        end)
  in
  Alcotest.(check string) "round trip crossed two processes" "ping-pong" v;
  Alcotest.(check int) "two messages" 2 stats.Procs.total_msgs;
  Alcotest.(check int) "two receives" 2 stats.Procs.total_recvs

(* Receiving tags out of send order: the pending stash holds the earlier
   frame until it is asked for, FIFO per (source, tag). *)
let test_tag_discipline_out_of_order () =
  let v, _ =
    Procs.run_collect ~procs:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:1 10;
          eng.Engine.send ~dest:1 ~tag:2 20;
          None
        end
        else begin
          let (b : int) = eng.Engine.recv ~src:0 ~tag:2 () in
          let (a : int) = eng.Engine.recv ~src:0 ~tag:1 () in
          Some (a, b)
        end)
  in
  Alcotest.(check (pair int int)) "tags matched, not arrival order" (10, 20) v

let test_self_send_rejected () =
  Alcotest.check_raises "self send"
    (Invalid_argument "Procs.send: self-send is not supported (use a local value)") (fun () ->
      ignore
        (Procs.run ~procs:2 (fun eng ->
             if eng.Engine.rank = 0 then eng.Engine.send ~dest:0 ~tag:0 ())))

let test_recv_timeout_fires () =
  (* nobody sends: the receiver must get Fault.Timeout via the select
     deadline, not hang *)
  let v, _ =
    Procs.run_collect ~procs:2 (fun eng ->
        if eng.Engine.rank = 1 then
          match (eng.Engine.recv ~timeout:0.05 ~src:0 ~tag:0 () : int) with
          | _ -> Some false
          | exception Fault.Timeout _ -> Some true
        else None)
  in
  Alcotest.(check bool) "Timeout raised" true v

let test_recv_timeout_in_time () =
  let v, _ =
    Procs.run_collect ~procs:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:0 77;
          None
        end
        else Some (eng.Engine.recv ~timeout:10.0 ~src:0 ~tag:0 () : int))
  in
  Alcotest.(check int) "delivered" 77 v

let test_deadlock_sender_finished () =
  (* waiting on a rank that finished cleanly (goodbye then EOF) is a
     protocol bug, reported as Deadlock — not Crashed *)
  (match Procs.run ~procs:2 (fun eng ->
       if eng.Engine.rank = 0 then ignore (eng.Engine.recv ~src:1 ~tag:0 () : int))
   with
  | _ -> Alcotest.fail "expected Procs.Deadlock"
  | exception Procs.Deadlock msg ->
      Alcotest.(check bool) "names the finished peer" true (contains msg "finished cleanly"));
  ()

let test_undelivered_message () =
  (* a clean finish with unconsumed inbound frames trips the same
     undelivered-message check as the other engines. The receiver sleeps
     first so the frame is guaranteed to have crossed the socket. *)
  match
    Procs.run ~procs:2 (fun eng ->
        if eng.Engine.rank = 0 then eng.Engine.send ~dest:1 ~tag:9 "orphan"
        else eng.Engine.sleep 0.3)
  with
  | _ -> Alcotest.fail "expected Procs.Deadlock (undelivered)"
  | exception Procs.Deadlock msg ->
      Alcotest.(check bool) "undelivered reported" true (contains msg "undelivered")

let test_rank_exception_propagates () =
  (* an arbitrary exception in one child crosses back to the parent with
     its rank attached *)
  match Procs.run ~procs:2 (fun eng -> if eng.Engine.rank = 1 then failwith "worker bug") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "message survives" "worker bug" msg

(* --- marshalable-payload discipline -------------------------------------- *)

let test_unserializable_closure_rejected () =
  (* in-process engines happily ship closures; here the send boundary
     must refuse with the Fault-taxonomy error, not a raw Marshal raise
     somewhere mid-protocol *)
  match
    Procs.run ~procs:2 (fun eng ->
        if eng.Engine.rank = 0 then eng.Engine.send ~dest:1 ~tag:0 (fun x -> x + 1)
        else ignore (eng.Engine.recv ~timeout:2.0 ~src:0 ~tag:0 () : int -> int))
  with
  | _ -> Alcotest.fail "expected Fault.Unserializable"
  | exception Fault.Unserializable msg ->
      Alcotest.(check bool) "send site named" true (contains msg "Procs.send");
      Alcotest.(check bool)
        "explains the boundary" true
        (contains msg "cannot cross a process boundary")

let test_unserializable_result_rejected () =
  match Procs.run_collect ~procs:1 (fun _eng -> Some (fun x -> x * 2)) with
  | _ -> Alcotest.fail "expected Fault.Unserializable"
  | exception Fault.Unserializable msg ->
      Alcotest.(check bool) "collect site named" true (contains msg "run_collect")

(* --- real crashes --------------------------------------------------------- *)

let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let test_real_kill_mid_protocol_is_crashed () =
  (* SIGKILL, not a simulated raise: a surviving rank's untimed receive
     must surface Fault.Crashed when its peer's socket hits EOF without
     a goodbye *)
  match
    Spmd.run_procs_collect ~procs:4 (fun comm ->
        if Comm.rank comm = 2 then kill_self ();
        let s = Comm.allreduce comm ( + ) (Comm.rank comm) in
        if Comm.rank comm = 0 then Some s else None)
  with
  | _ -> Alcotest.fail "expected Fault.Crashed"
  | exception Fault.Crashed _ -> ()

let test_real_kill_timed_recv_still_times_out () =
  (* the failure-detector contract: a receive WITH a timeout never maps
     peer death to Crashed — it waits out the deadline and raises
     Timeout, which is all the farm master catches *)
  let v, stats =
    Procs.run_collect ~procs:2 (fun eng ->
        if eng.Engine.rank = 1 then kill_self ();
        if eng.Engine.rank = 0 then
          match (eng.Engine.recv ~timeout:0.3 ~src:1 ~tag:0 () : int) with
          | _ -> Some "delivered"
          | exception Fault.Timeout _ -> Some "timeout"
          | exception Fault.Crashed _ -> Some "crashed"
        else None)
  in
  Alcotest.(check string) "Timeout, not Crashed" "timeout" v;
  Alcotest.(check (list int)) "the kill is recorded" [ 1 ] stats.Procs.crashed

let test_chaos_crash_is_fail_stop () =
  (* Chaos's Fault.Crashed self-raise fail-stops the real process: no
     goodbye, sockets slammed shut, run completes without it *)
  let v, stats =
    Procs.run_collect ~procs:3 (fun eng ->
        match eng.Engine.rank with
        | 0 ->
            eng.Engine.send ~dest:1 ~tag:0 42;
            (* dies with the crash *)
            None
        | 1 -> raise (Fault.Crashed 1)
        | _ -> Some "alive")
  in
  Alcotest.(check string) "live ranks finish" "alive" v;
  Alcotest.(check (list int)) "crash recorded" [ 1 ] stats.Procs.crashed

(* --- engine equivalence: same program, identical values ------------------ *)

let collective_program (comm : Comm.t) =
  let p = Comm.size comm in
  let me = Comm.rank comm in
  let reduced = Comm.allreduce comm ( + ) (me + 1) in
  let scanned = Comm.scan comm ( + ) (me + 1) in
  let gathered = Comm.allgather comm (me * me) in
  let transposed = Comm.alltoall comm (Array.init p (fun j -> (me * 100) + j)) in
  let sub = Comm.split comm ~color:(me mod 2) ~key:me in
  let sub_sum = Comm.allreduce sub ( + ) me in
  let everything = (reduced, scanned, gathered, transposed, sub_sum) in
  match Comm.gather comm ~root:0 everything with
  | Some all -> Some (Array.to_list all)
  | None -> None

let test_engine_equivalence_collectives () =
  List.iter
    (fun procs ->
      let sim, _ = Spmd.run_collect ~procs collective_program in
      let pr, _ = Spmd.run_procs_collect ~procs collective_program in
      Alcotest.(check bool) (Printf.sprintf "collectives agree at p=%d" procs) true (sim = pr))
    [ 1; 2; 4 ]

(* The bcast/scatter/gather/allgather battery, boxed and slice tiers.
   Slices cross the sockets as raw float64 bit patterns, so the values
   must come back bitwise-identical to the simulator's. *)
let bs_program (comm : Comm.t) =
  let p = Comm.size comm in
  let me = Comm.rank comm in
  let mk n f =
    let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      a.{i} <- f i
    done;
    a
  in
  let to_list (s : Engine.slice) = List.init (Bigarray.Array1.dim s) (fun i -> s.{i}) in
  let b = Comm.bcast comm ~root:0 (if me = 0 then Some "root-word" else None) in
  let sc = Comm.scatter comm ~root:0 (if me = 0 then Some (Array.init p (fun j -> j * 7)) else None) in
  let g = Comm.gather comm ~root:0 (me * 11) in
  let ag = Comm.allgather comm (me + 100) in
  let bsl =
    Comm.bcast_slice comm ~root:0
      (if me = 0 then Some (mk 5 (fun i -> 1.0 /. float_of_int (i + 1))) else None)
  in
  let scl =
    Comm.scatter_slice comm ~root:0
      (if me = 0 then Some (mk (3 * p) (fun i -> float_of_int i *. 0.5)) else None)
  in
  let gsl = Comm.gather_slice comm ~root:0 (mk 2 (fun i -> float_of_int ((me * 10) + i))) in
  let agl = Comm.allgather_slice comm (mk 1 (fun _ -> float_of_int me +. 0.25)) in
  let everything =
    ( b,
      sc,
      (match g with Some a -> Array.to_list a | None -> []),
      Array.to_list ag,
      to_list bsl,
      to_list scl,
      (match gsl with Some s -> to_list s | None -> []),
      to_list agl )
  in
  match Comm.gather comm ~root:0 everything with
  | Some all -> Some (Array.to_list all)
  | None -> None

let test_collective_battery_with_slices () =
  List.iter
    (fun procs ->
      let sim, _ = Spmd.run_collect ~procs bs_program in
      let pr, _ = Spmd.run_procs_collect ~procs bs_program in
      Alcotest.(check bool)
        (Printf.sprintf "bcast/scatter/gather/allgather (+slices) agree at p=%d" procs)
        true (sim = pr))
    [ 2; 4 ]

let test_reduce_root_sweep () =
  (* every root must see values folded in true rank order (the PR 5
     rotated-root bug), now across process boundaries *)
  let procs = 4 in
  let expected = String.concat "" (List.init procs string_of_int) in
  for root = 0 to procs - 1 do
    let v, _ =
      Spmd.run_procs_collect ~procs (fun c ->
          match Comm.reduce c ~root ( ^ ) (string_of_int (Comm.rank c)) with
          | Some s -> Some s
          | None -> None)
    in
    Alcotest.(check string) (Printf.sprintf "root=%d" root) expected v
  done

let test_engine_equivalence_hyperquicksort () =
  let rng = Runtime.Xoshiro.of_seed 1995 in
  let data = Array.init 600 (fun _ -> Runtime.Xoshiro.int rng 10_000) in
  let reference = Array.copy data in
  Array.sort compare reference;
  List.iter
    (fun procs ->
      let sim, _ = Algorithms.Hyperquicksort.sort_sim ~procs data in
      let pr, _ = Algorithms.Hyperquicksort.sort_procs ~procs data in
      Alcotest.(check bool) (Printf.sprintf "sim output sorted at p=%d" procs) true
        (sim = reference);
      Alcotest.(check bool) (Printf.sprintf "procs output identical at p=%d" procs) true
        (pr = sim))
    [ 1; 2; 4 ]

(* --- chaos on real processes --------------------------------------------- *)

let test_chaos_zero_fault_value_identical () =
  let bare, _ = Spmd.run_procs_collect ~procs:4 collective_program in
  let wrapped, _ = Spmd.run_procs_collect ~procs:4 ~chaos:Chaos.none collective_program in
  Alcotest.(check bool) "Chaos.none changes nothing" true (bare = wrapped)

let test_chaos_delays_value_identical () =
  let bare, _ = Spmd.run_procs_collect ~procs:4 collective_program in
  List.iter
    (fun seed ->
      let spec = Chaos.delays ~seed ~prob:0.5 ~max_hold:3 () in
      let v, _ = Spmd.run_procs_collect ~procs:4 ~chaos:spec collective_program in
      Alcotest.(check bool) (Printf.sprintf "seed=%d" seed) true (v = bare))
    [ 1; 7; 42 ]

(* --- the crash-tolerant farm, driven by real process deaths --------------- *)

let farm_expected njobs = Array.init njobs (fun i -> i * i)

let test_farm_on_procs () =
  List.iter
    (fun procs ->
      let njobs = 24 in
      let spec = Algorithms.Farm_sim.skewed_spec ~njobs ~skew:6 in
      let got, stats = Algorithms.Farm_sim.dynamic_procs ~procs spec in
      Alcotest.(check bool)
        (Printf.sprintf "all jobs done once at p=%d" procs)
        true
        (got = farm_expected njobs);
      Alcotest.(check (list int)) "no crashes" [] stats.Procs.crashed)
    [ 2; 4 ]

let test_farm_survives_chaos_worker_crash () =
  (* rank 2 fail-stops on its 5th communication op (mid-job) — on this
     engine that is a process dying with its sockets; the master's grace
     timeouts detect the silence and re-deal its job *)
  let njobs = 24 in
  let spec = Algorithms.Farm_sim.skewed_spec ~njobs ~skew:6 in
  let chaos = { Chaos.none with Chaos.crashes = [ (2, 5) ] } in
  let got, stats = Algorithms.Farm_sim.dynamic_procs ~procs:4 ~grace:0.5 ~chaos spec in
  Alcotest.(check bool) "all jobs done exactly once" true (got = farm_expected njobs);
  Alcotest.(check (list int)) "the crash is recorded" [ 2 ] stats.Procs.crashed

let test_farm_survives_real_kill () =
  (* the end-to-end scenario this engine exists for: a worker is
     SIGKILLed after ACCEPTING a job (so the job is genuinely stranded),
     and the farm still completes via at-least-once re-dealing. The
     victim speaks the worker protocol directly (request tag 7001, job
     tag 7002 — the farm's wire protocol) for exactly one deal, then
     dies holding the job. *)
  let njobs = 16 in
  let spec = Algorithms.Farm_sim.skewed_spec ~njobs ~skew:4 in
  let got, stats =
    Spmd.run_procs_collect ~procs:4 (fun comm ->
        if Comm.rank comm = 3 then begin
          Comm.send comm ~dest:0 ~tag:7001 (`Request : [ `Request | `Result of int * int ]);
          let (_job : int) = Comm.recv comm ~src:0 ~tag:7002 () in
          kill_self ();
          None
        end
        else Algorithms.Farm_sim.dynamic_program ~grace:0.5 spec comm)
  in
  Alcotest.(check bool) "all jobs done despite the kill" true (got = farm_expected njobs);
  Alcotest.(check (list int)) "the dead worker is recorded" [ 3 ] stats.Procs.crashed

let test_farm_all_workers_lost () =
  (* every worker dies: with grace armed the master must fail loudly
     rather than hang on dead sockets *)
  let spec = Algorithms.Farm_sim.skewed_spec ~njobs:12 ~skew:4 in
  let chaos = { Chaos.none with Chaos.crashes = [ (1, 3); (2, 3); (3, 3) ] } in
  match Algorithms.Farm_sim.dynamic_procs ~procs:4 ~grace:0.4 ~chaos spec with
  | _ -> Alcotest.fail "expected loud failure"
  | exception Failure msg ->
      Alcotest.(check bool) "all-lost reported" true (contains msg "all workers lost")

let suite =
  [
    ( "fabric",
      [
        Alcotest.test_case "single rank" `Quick test_single_rank;
        Alcotest.test_case "ping pong" `Quick test_ping_pong;
        Alcotest.test_case "tag discipline out of order" `Quick test_tag_discipline_out_of_order;
        Alcotest.test_case "self send rejected" `Quick test_self_send_rejected;
        Alcotest.test_case "recv timeout fires" `Quick test_recv_timeout_fires;
        Alcotest.test_case "in-time delivery beats deadline" `Quick test_recv_timeout_in_time;
        Alcotest.test_case "sender finished is deadlock" `Quick test_deadlock_sender_finished;
        Alcotest.test_case "undelivered message" `Quick test_undelivered_message;
        Alcotest.test_case "rank exception propagates" `Quick test_rank_exception_propagates;
      ] );
    ( "marshal-discipline",
      [
        Alcotest.test_case "closure payload rejected" `Quick test_unserializable_closure_rejected;
        Alcotest.test_case "closure result rejected" `Quick test_unserializable_result_rejected;
      ] );
    ( "crashes",
      [
        Alcotest.test_case "SIGKILL mid-protocol is Crashed" `Quick
          test_real_kill_mid_protocol_is_crashed;
        Alcotest.test_case "timed recv from dead peer times out" `Quick
          test_real_kill_timed_recv_still_times_out;
        Alcotest.test_case "chaos crash is fail-stop" `Quick test_chaos_crash_is_fail_stop;
      ] );
    ( "engine-equivalence",
      [
        Alcotest.test_case "collectives p=1/2/4" `Quick test_engine_equivalence_collectives;
        Alcotest.test_case "bcast/scatter/gather/allgather + slices p=2/4" `Quick
          test_collective_battery_with_slices;
        Alcotest.test_case "reduce root sweep" `Quick test_reduce_root_sweep;
        Alcotest.test_case "hyperquicksort p=1/2/4" `Quick test_engine_equivalence_hyperquicksort;
      ] );
    ( "chaos",
      [
        Alcotest.test_case "zero-fault wrap is value-identical" `Quick
          test_chaos_zero_fault_value_identical;
        Alcotest.test_case "delays preserve values" `Quick test_chaos_delays_value_identical;
      ] );
    ( "farm",
      [
        Alcotest.test_case "dynamic farm p=2/4" `Quick test_farm_on_procs;
        Alcotest.test_case "survives chaos worker crash" `Quick
          test_farm_survives_chaos_worker_crash;
        Alcotest.test_case "survives a real SIGKILL" `Quick test_farm_survives_real_kill;
        Alcotest.test_case "all workers lost fails loudly" `Quick test_farm_all_workers_lost;
      ] );
  ]

let () = Alcotest.run "procs" suite
