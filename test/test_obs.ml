(* Tests for the observability layer: JSON codec, counters, histograms,
   span timers, disabled-mode no-ops, the bench artifact schema, and the
   Chrome trace_event export.

   The obs switch is global mutable state; every test that flips it
   restores "disabled" on the way out so ordering never matters. *)

let with_obs_enabled f =
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* --- JSON codec --------------------------------------------------------- *)

let roundtrip v =
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("name", String "bench \"one\"\n\ttab");
        ("n", Int 100_000);
        ("neg", Int (-42));
        ("time", Float 0.048435);
        ("tiny", Float 1.5e-300);
        ("big", Float 1.234567890123e200);
        ("flag", Bool true);
        ("nothing", Null);
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ("nested", List [ Int 1; List [ Float 2.5; Bool false ]; Obj [ ("k", Null) ] ]);
      ]
  in
  Alcotest.(check bool) "structural round-trip" true (roundtrip v = v);
  (* Pretty output parses back to the same tree too. *)
  match of_string (to_string ~pretty:true v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v' = v)
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_float_fidelity () =
  List.iter
    (fun f ->
      match roundtrip (Obs.Json.Float f) with
      | Obs.Json.Float f' -> Alcotest.(check (float 0.0)) "exact float" f f'
      | _ -> Alcotest.fail "float did not parse as float")
    [ 0.1; 1.0 /. 3.0; 1e-17; 123456.789; Float.max_float; Float.min_float ]

let test_json_unicode () =
  (* \u escape decoding, including a surrogate pair. *)
  match Obs.Json.of_string {|"caf\u00e9 \ud83d\ude00"|} with
  | Ok (Obs.Json.String s) -> Alcotest.(check string) "utf8 decode" "caf\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_errors () =
  let bad = [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "[1] garbage"; "\"\\ud800\"" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  let open Obs.Json in
  let v = Obj [ ("a", Int 3); ("b", Float 2.5); ("c", String "x") ] in
  Alcotest.(check (option int)) "mem_int" (Some 3) (mem_int "a" v);
  Alcotest.(check (option (float 0.0))) "int as float" (Some 3.0) (mem_float "a" v);
  Alcotest.(check (option (float 0.0))) "mem_float" (Some 2.5) (mem_float "b" v);
  Alcotest.(check (option string)) "mem_string" (Some "x") (mem_string "c" v);
  Alcotest.(check (option int)) "absent" None (mem_int "zzz" v)

(* --- counters ----------------------------------------------------------- *)

let test_counter_semantics () =
  with_obs_enabled (fun () ->
      let c = Obs.Counter.make "test.counter" in
      Obs.Counter.reset c;
      Obs.Counter.incr c;
      Obs.Counter.incr c;
      Obs.Counter.add c 40;
      Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
      Obs.Counter.reset c;
      Alcotest.(check int) "reset" 0 (Obs.Counter.value c);
      (* make is idempotent: same registered counter comes back. *)
      let c' = Obs.Counter.make "test.counter" in
      Obs.Counter.incr c';
      Alcotest.(check int) "same counter via make" 1 (Obs.Counter.value c))

let test_counter_parallel () =
  with_obs_enabled (fun () ->
      let c = Obs.Counter.make "test.counter.par" in
      Obs.Counter.reset c;
      let per_domain = 10_000 in
      let domains =
        Array.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Obs.Counter.incr c
                done))
      in
      Array.iter Domain.join domains;
      Alcotest.(check int) "no lost increments" (4 * per_domain) (Obs.Counter.value c))

let test_disabled_is_noop () =
  Obs.disable ();
  let c = Obs.Counter.make "test.counter.off" in
  let h = Obs.Histogram.make "test.hist.off" in
  Obs.Counter.reset c;
  Obs.Histogram.reset h;
  Obs.Counter.incr c;
  Obs.Counter.add c 100;
  Obs.Histogram.record h 5;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Histogram.count h);
  (* Spans: thunk still runs, nothing recorded, depth untouched. *)
  let s = Obs.Span.make "test.span.off" in
  let r = Obs.Span.timed s (fun () -> 17) in
  Alcotest.(check int) "span passes value through" 17 r;
  Alcotest.(check int) "span recorded nothing" 0 (Obs.Span.count s);
  Alcotest.(check int) "depth is zero" 0 (Obs.Span.depth ())

(* --- histograms --------------------------------------------------------- *)

let test_histogram_buckets () =
  let open Obs.Histogram in
  Alcotest.(check int) "bucket of 0" 0 (bucket_of 0);
  Alcotest.(check int) "bucket of 1" 1 (bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (bucket_of 4);
  Alcotest.(check int) "bucket of 1023" 10 (bucket_of 1023);
  Alcotest.(check int) "bucket of 1024" 11 (bucket_of 1024)

let test_histogram_semantics () =
  with_obs_enabled (fun () ->
      let h = Obs.Histogram.make ~unit_:"ns" "test.hist" in
      Obs.Histogram.reset h;
      List.iter (Obs.Histogram.record h) [ 0; 1; 3; 100; 100; 7_000 ];
      Alcotest.(check int) "count" 6 (Obs.Histogram.count h);
      Alcotest.(check int) "sum" 7204 (Obs.Histogram.sum h);
      Alcotest.(check int) "min" 0 (Obs.Histogram.min_value h);
      Alcotest.(check int) "max" 7000 (Obs.Histogram.max_value h);
      Alcotest.(check (float 1e-9)) "mean" (7204.0 /. 6.0) (Obs.Histogram.mean h);
      Obs.Histogram.record h (-5);
      Alcotest.(check int) "negative clamps to 0" 0 (Obs.Histogram.min_value h);
      let total_in_buckets =
        List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Obs.Histogram.nonzero_buckets h)
      in
      Alcotest.(check int) "buckets account for every sample" 7 total_in_buckets;
      List.iter
        (fun (lo, hi, _) ->
          if lo > hi then Alcotest.failf "bucket bound inversion: lo=%d hi=%d" lo hi)
        (Obs.Histogram.nonzero_buckets h))

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs_enabled (fun () ->
      let outer = Obs.Span.make "test.span.outer" in
      let inner = Obs.Span.make "test.span.inner" in
      Alcotest.(check int) "depth 0 outside" 0 (Obs.Span.depth ());
      let observed_depths =
        Obs.Span.timed outer (fun () ->
            let d1 = Obs.Span.depth () in
            let d2 = Obs.Span.timed inner (fun () -> Obs.Span.depth ()) in
            (d1, d2))
      in
      Alcotest.(check (pair int int)) "nesting depths" (1, 2) observed_depths;
      Alcotest.(check int) "depth restored" 0 (Obs.Span.depth ());
      Alcotest.(check int) "outer count" 1 (Obs.Span.count outer);
      Alcotest.(check int) "inner count" 1 (Obs.Span.count inner);
      if Obs.Span.total_ns outer < Obs.Span.total_ns inner then
        Alcotest.fail "outer span total must dominate nested inner span")

let test_span_exception_safe () =
  with_obs_enabled (fun () ->
      let s = Obs.Span.make "test.span.exn" in
      (try Obs.Span.timed s (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "span recorded despite exception" 1 (Obs.Span.count s);
      Alcotest.(check int) "depth restored after exception" 0 (Obs.Span.depth ()))

(* --- instrumented layers ------------------------------------------------ *)

let test_exec_instrumented () =
  with_obs_enabled (fun () ->
      let before = Option.value ~default:0 (Obs.Metrics.counter_value "exec.sequential.calls") in
      let pa = Scl.Par_array.init 1000 (fun i -> i) in
      ignore (Scl.map (fun x -> x + 1) pa);
      ignore (Scl.fold ( + ) pa);
      ignore (Scl.scan ( + ) pa);
      let after = Option.value ~default:0 (Obs.Metrics.counter_value "exec.sequential.calls") in
      if after - before < 3 then
        Alcotest.failf "expected >= 3 instrumented exec calls, got %d" (after - before);
      match Obs.Metrics.histogram_snapshot "exec.sequential.pmap" with
      | None -> Alcotest.fail "exec.sequential.pmap span not registered"
      | Some hs ->
          if hs.Obs.Metrics.hs_count < 1 then Alcotest.fail "pmap span recorded no samples";
          Alcotest.(check string) "span unit" "ns" hs.Obs.Metrics.hs_unit)

let test_sim_counters () =
  with_obs_enabled (fun () ->
      Obs.reset ();
      let data = Array.init 256 (fun i -> (i * 37) mod 101) in
      let _, stats = Algorithms.Hyperquicksort.sort_sim ~procs:4 data in
      let counter name = Option.value ~default:0 (Obs.Metrics.counter_value name) in
      Alcotest.(check int) "sim.runs" 1 (counter "sim.runs");
      Alcotest.(check int) "sim.msgs matches stats" stats.Machine.Sim.total_msgs (counter "sim.msgs");
      Alcotest.(check int) "sim.bytes matches stats" stats.Machine.Sim.total_bytes
        (counter "sim.bytes");
      match Obs.Metrics.histogram_snapshot "sim.makespan_us" with
      | None -> Alcotest.fail "sim.makespan_us not registered"
      | Some hs -> Alcotest.(check int) "one makespan sample" 1 hs.Obs.Metrics.hs_count)

let test_pool_stats () =
  let pool = Runtime.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let acc = Atomic.make 0 in
      Runtime.Pool.parallel_for ~grain:16 pool ~lo:0 ~hi:10_000 (fun _ -> Atomic.incr acc);
      Alcotest.(check int) "work all done" 10_000 (Atomic.get acc);
      let s = Runtime.Pool.stats pool in
      if s.Runtime.Pool.total_submitted <= 0 then Alcotest.fail "no tasks submitted?";
      if s.Runtime.Pool.total_tasks < s.Runtime.Pool.total_submitted then
        Alcotest.failf "tasks run (%d) < submitted (%d): lost tasks"
          s.Runtime.Pool.total_tasks s.Runtime.Pool.total_submitted;
      Alcotest.(check int) "2 workers reported" 2 (Array.length s.Runtime.Pool.per_worker))

let test_pool_publish_obs () =
  with_obs_enabled (fun () ->
      Obs.reset ();
      let pool = Runtime.Pool.create ~num_domains:2 () in
      let p = Runtime.Pool.async pool (fun () -> 21 * 2) in
      Alcotest.(check int) "result" 42 (Runtime.Pool.await pool p);
      Runtime.Pool.teardown pool;
      match Obs.Metrics.counter_value "pool.submitted" with
      | Some n when n >= 1 -> ()
      | Some n -> Alcotest.failf "pool.submitted = %d after teardown" n
      | None -> Alcotest.fail "pool.submitted not registered")

(* --- chrome trace export ------------------------------------------------ *)

let test_chrome_trace () =
  let trace = Machine.Trace.create () in
  let data = Array.init 64 (fun i -> (i * 31) mod 97) in
  let _ = Algorithms.Hyperquicksort.sort_sim ~trace ~procs:4 data in
  let json = Machine.Trace.to_chrome trace in
  (* Serialise and re-parse: the artifact on disk must be valid JSON. *)
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok (Obs.Json.List events) ->
      if List.length events < 8 then Alcotest.fail "suspiciously few trace events";
      let phases = ref [] in
      List.iter
        (fun e ->
          let ph =
            match Obs.Json.mem_string "ph" e with
            | Some ph -> ph
            | None -> Alcotest.fail "event missing \"ph\""
          in
          phases := ph :: !phases;
          if Obs.Json.mem_int "pid" e = None then Alcotest.fail "event missing \"pid\"";
          if Obs.Json.mem_int "tid" e = None then Alcotest.fail "event missing \"tid\"";
          if ph <> "M" && Obs.Json.mem_float "ts" e = None then
            Alcotest.fail "event missing \"ts\"";
          if ph = "X" && Obs.Json.mem_float "dur" e = None then
            Alcotest.fail "complete event missing \"dur\"")
        events;
      if not (List.mem "X" !phases) then Alcotest.fail "no work (X) events in trace"
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"

(* --- bench artifact schema ---------------------------------------------- *)

let sample_result name median =
  {
    Obs.Artifact.name;
    n = 1000;
    procs = 8;
    backend = "sim-ap1000";
    runs = 3;
    median_s = median;
    min_s = median *. 0.9;
    counters = [ ("sim.msgs", 120.0); ("sim.bytes", 4096.0) ];
  }

let test_artifact_roundtrip () =
  let file =
    Obs.Artifact.make ~created_unix:1_700_000_000.0 ~smoke:true
      ~host:[ ("cores", "4"); ("ocaml", Sys.ocaml_version) ]
      [ sample_result "a/sim" 0.5; sample_result "b/pool" 0.125 ]
  in
  match Obs.Artifact.of_json (Obs.Artifact.to_json file) with
  | Error e -> Alcotest.failf "artifact round-trip failed: %s" e
  | Ok file' ->
      Alcotest.(check string) "schema" Obs.Artifact.schema_version file'.Obs.Artifact.schema;
      Alcotest.(check bool) "smoke" true file'.Obs.Artifact.smoke;
      Alcotest.(check int) "results" 2 (List.length file'.Obs.Artifact.results);
      let r = List.hd file'.Obs.Artifact.results in
      Alcotest.(check string) "name" "a/sim" r.Obs.Artifact.name;
      Alcotest.(check (float 0.0)) "median" 0.5 r.Obs.Artifact.median_s;
      Alcotest.(check int) "counters survive" 2 (List.length r.Obs.Artifact.counters)

let test_artifact_schema_guard () =
  match Obs.Artifact.of_json (Obs.Json.Obj [ ("schema", Obs.Json.String "scl-bench/999") ]) with
  | Ok _ -> Alcotest.fail "accepted mismatched schema"
  | Error _ -> ()

let test_artifact_compare () =
  let baseline =
    Obs.Artifact.make ~smoke:true ~host:[]
      [ sample_result "same" 1.0; sample_result "slower" 1.0; sample_result "faster" 1.0;
        sample_result "gone" 1.0 ]
  in
  let candidate =
    Obs.Artifact.make ~smoke:true ~host:[]
      [ sample_result "same" 1.05; sample_result "slower" 1.6; sample_result "faster" 0.4;
        sample_result "new" 1.0 ]
  in
  let comparisons, missing, added =
    Obs.Artifact.compare_files ~threshold:0.25 ~baseline ~candidate ()
  in
  let verdict name =
    (List.find (fun c -> c.Obs.Artifact.bench = name) comparisons).Obs.Artifact.verdict
  in
  Alcotest.(check bool) "same ok" true (verdict "same" = Obs.Artifact.Unchanged);
  Alcotest.(check bool) "slower regresses" true (verdict "slower" = Obs.Artifact.Regression);
  Alcotest.(check bool) "faster improves" true (verdict "faster" = Obs.Artifact.Improvement);
  Alcotest.(check (list string)) "missing" [ "gone" ] missing;
  Alcotest.(check (list string)) "added" [ "new" ] added;
  Alcotest.(check bool) "any_regression" true (Obs.Artifact.any_regression comparisons)

let test_median () =
  Alcotest.(check (float 0.0)) "odd" 2.0 (Obs.Artifact.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 0.0)) "even" 2.5 (Obs.Artifact.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 0.0)) "single" 7.0 (Obs.Artifact.median [| 7.0 |])

(* --- histogram quantiles ------------------------------------------------ *)

let test_histogram_quantiles () =
  with_obs_enabled (fun () ->
      let h = Obs.Histogram.make ~unit_:"us" "test.quant" in
      Obs.Histogram.reset h;
      (* empty: all quantiles are 0 *)
      Alcotest.(check (float 0.0)) "empty" 0.0 (Obs.Histogram.quantile h 0.5);
      for v = 1 to 100 do
        Obs.Histogram.record h v
      done;
      (* log2 buckets quantize, so check interval containment plus the
         exact clamped edges (min for q=0, max for q=1) *)
      let q50 = Obs.Histogram.quantile h 0.5 in
      Alcotest.(check bool) "p50 in [32,64]" true (q50 >= 32.0 && q50 <= 64.0);
      let q99 = Obs.Histogram.quantile h 0.99 in
      Alcotest.(check bool) "p99 in [64,100]" true (q99 >= 64.0 && q99 <= 100.0);
      Alcotest.(check (float 0.0)) "q=0 clamps to min" 1.0 (Obs.Histogram.quantile h 0.0);
      Alcotest.(check (float 0.0)) "q=1 clamps to max" 100.0 (Obs.Histogram.quantile h 1.0);
      (match Obs.Histogram.quantile h 1.5 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "q outside [0,1] must be rejected");
      (* monotone in q *)
      let prev = ref 0.0 in
      List.iter
        (fun q ->
          let v = Obs.Histogram.quantile h q in
          Alcotest.(check bool) "monotone" true (v >= !prev);
          prev := v)
        [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
      (* a snapshot answers the same quantile queries as the live histogram *)
      match Obs.Metrics.histogram_snapshot "test.quant" with
      | None -> Alcotest.fail "snapshot missing"
      | Some hs ->
          List.iter
            (fun q ->
              Alcotest.(check (float 0.0)) "snapshot agrees"
                (Obs.Histogram.quantile h q)
                (Obs.Metrics.snapshot_quantile hs q))
            [ 0.0; 0.5; 0.95; 1.0 ])

(* --- strict sim gate ---------------------------------------------------- *)

let host_result name median =
  { (sample_result name median) with Obs.Artifact.backend = "pool" }

let test_strict_sim_violations () =
  Alcotest.(check bool) "sim backend recognized" true
    (Obs.Artifact.is_sim_backend (sample_result "x" 1.0));
  Alcotest.(check bool) "host backend not" false
    (Obs.Artifact.is_sim_backend (host_result "x" 1.0));
  let baseline =
    Obs.Artifact.make ~smoke:true ~host:[]
      [ sample_result "steady" 1.0; sample_result "drifter" 1.0; sample_result "vanishing" 1.0;
        host_result "noisy" 1.0 ]
  in
  let candidate =
    Obs.Artifact.make ~smoke:true ~host:[]
      [ sample_result "steady" 1.0;
        sample_result "drifter" (1.0 +. 1e-12);
        sample_result "appearing" 1.0;
        (* host entries may drift or vanish freely *)
        host_result "noisy" 57.0 ]
  in
  let vs = Obs.Artifact.strict_sim_violations ~baseline ~candidate in
  let names = List.map (fun v -> v.Obs.Artifact.sv_bench) vs in
  Alcotest.(check bool) "steady clean" true (not (List.mem "steady" names));
  Alcotest.(check bool) "tiny drift caught" true (List.mem "drifter" names);
  Alcotest.(check bool) "removal caught" true (List.mem "vanishing" names);
  Alcotest.(check bool) "unexplained addition caught" true (List.mem "appearing" names);
  Alcotest.(check bool) "host drift ignored" true (not (List.mem "noisy" names));
  (* identical files pass the gate *)
  Alcotest.(check int) "self-compare is clean" 0
    (List.length (Obs.Artifact.strict_sim_violations ~baseline ~candidate:baseline))

let test_is_sim_backend_boundaries () =
  (* exact-family membership, not a "sim" prefix test: every backend the
     simulator actually emits is in, every near-miss spelling is out *)
  let with_backend b = { (sample_result "x" 1.0) with Obs.Artifact.backend = b } in
  List.iter
    (fun b ->
      Alcotest.(check bool) (Printf.sprintf "%S gated" b) true
        (Obs.Artifact.is_sim_backend (with_backend b)))
    [ "sim"; "sim-ap1000"; "sim-p2"; "sim-p4"; "sim-p16" ];
  List.iter
    (fun b ->
      Alcotest.(check bool) (Printf.sprintf "%S not gated" b) false
        (Obs.Artifact.is_sim_backend (with_backend b)))
    [
      "simd-avx2";  (* prefix lookalike, wall-clock *)
      "sim-procs";  (* hypothetical wall-clock procs label *)
      "procs";
      "host-sim";  (* sim suffix, not prefix *)
      "sim-p";  (* p with no digits *)
      "sim-p4x";  (* trailing junk after the digits *)
      "sim-ap1000x";
      "Sim";  (* case-sensitive *)
      "";
    ]

let test_strict_sim_counter_drift () =
  let base = sample_result "counters" 1.0 in
  let baseline = Obs.Artifact.make ~smoke:true ~host:[] [ base ] in
  let drifted =
    { base with Obs.Artifact.counters = [ ("sim.msgs", 121.0); ("sim.bytes", 4096.0) ] }
  in
  let candidate = Obs.Artifact.make ~smoke:true ~host:[] [ drifted ] in
  let vs = Obs.Artifact.strict_sim_violations ~baseline ~candidate in
  Alcotest.(check bool) "counter drift caught" true (vs <> [])

(* --- metrics JSON export ------------------------------------------------ *)

let test_metrics_to_json () =
  with_obs_enabled (fun () ->
      Obs.reset ();
      let c = Obs.Counter.make "test.export.counter" in
      let h = Obs.Histogram.make ~unit_:"bytes" "test.export.hist" in
      Obs.Counter.add c 7;
      Obs.Histogram.record h 512;
      let json = Obs.to_json () in
      (* The export must itself round-trip through the parser. *)
      match Obs.Json.of_string (Obs.Json.to_string json) with
      | Error e -> Alcotest.failf "metrics export is invalid JSON: %s" e
      | Ok parsed ->
          let counters = Option.get (Obs.Json.member "counters" parsed) in
          Alcotest.(check (option int)) "counter exported" (Some 7)
            (Obs.Json.mem_int "test.export.counter" counters);
          let hists = Option.get (Obs.Json.member "histograms" parsed) in
          let hist = Option.get (Obs.Json.member "test.export.hist" hists) in
          Alcotest.(check (option string)) "unit" (Some "bytes") (Obs.Json.mem_string "unit" hist);
          Alcotest.(check (option int)) "count" (Some 1) (Obs.Json.mem_int "count" hist);
          Alcotest.(check (option int)) "sum" (Some 512) (Obs.Json.mem_int "sum" hist))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float fidelity" `Quick test_json_float_fidelity;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "malformed inputs" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "counters",
        [
          Alcotest.test_case "semantics" `Quick test_counter_semantics;
          Alcotest.test_case "parallel increments" `Quick test_counter_parallel;
          Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_is_noop;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "semantics" `Quick test_histogram_semantics;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "exec backends instrumented" `Quick test_exec_instrumented;
          Alcotest.test_case "sim counters" `Quick test_sim_counters;
          Alcotest.test_case "pool stats" `Quick test_pool_stats;
          Alcotest.test_case "pool publishes on teardown" `Quick test_pool_publish_obs;
        ] );
      ( "chrome-trace",
        [ Alcotest.test_case "hyperquicksort trace is valid" `Quick test_chrome_trace ] );
      ( "artifact",
        [
          Alcotest.test_case "round-trip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "schema guard" `Quick test_artifact_schema_guard;
          Alcotest.test_case "comparison verdicts" `Quick test_artifact_compare;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "strict sim gate" `Quick test_strict_sim_violations;
          Alcotest.test_case "sim-backend family boundaries" `Quick
            test_is_sim_backend_boundaries;
          Alcotest.test_case "strict sim counter drift" `Quick test_strict_sim_counter_drift;
          Alcotest.test_case "metrics export" `Quick test_metrics_to_json;
        ] );
    ]
