(* Hyperquicksort on a 2-cube with a stage-by-stage trace — regenerates the
   paper's Figure 2 (32 values sorted on 4 processors, showing the local
   quicksort, the pivot broadcasts, and the exchange-merge rounds).

   Run with:  dune exec examples/hypersort_demo.exe
   Pass [--chrome FILE] to also export the trace as Chrome trace_event JSON
   (open in chrome://tracing or https://ui.perfetto.dev).
   Pass [--engine multicore] to run the same SPMD program on real OCaml 5
   domains instead of the simulator: identical sorted output, wall-clock
   stats instead of a simulated makespan.
   Pass [--engine procs] to run it on real forked OS processes talking
   over Unix-domain sockets (Machine.Procs): same output again, plus the
   message totals the socket fabric counted. *)

let chrome_out =
  let rec find = function
    | "--chrome" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let engine =
  let rec find = function
    | "--engine" :: e :: _ -> e
    | _ :: rest -> find rest
    | [] -> "sim"
  in
  find (Array.to_list Sys.argv)

let run_multicore () =
  let rng = Runtime.Xoshiro.of_seed 1995 in
  let data = Runtime.Xoshiro.int_array rng ~len:32 ~bound:100 in
  Format.printf "=== Hyperquicksort on 4 real OCaml domains (multicore engine) ===@.@.";
  Format.printf "unsorted input on rank 0:@.  [%s]@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int data)));
  let sorted, stats = Algorithms.Hyperquicksort.sort_multicore ~procs:4 data in
  Format.printf "sorted result gathered on rank 0:@.  [%s]@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int sorted)));
  Format.printf "wall clock: %.6f s on %d domain(s); %d messages, %d sleeps@."
    stats.Machine.Multicore.wall stats.Machine.Multicore.domains_used
    stats.Machine.Multicore.total_msgs stats.Machine.Multicore.sleeps;
  let check = Array.copy data in
  Array.sort compare check;
  assert (sorted = check);
  Format.printf "verified against sequential sort. ok.@."

let run_procs () =
  let rng = Runtime.Xoshiro.of_seed 1995 in
  let data = Runtime.Xoshiro.int_array rng ~len:32 ~bound:100 in
  Format.printf "=== Hyperquicksort on 4 forked OS processes (procs engine) ===@.@.";
  Format.printf "unsorted input on rank 0:@.  [%s]@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int data)));
  let sorted, stats = Algorithms.Hyperquicksort.sort_procs ~procs:4 data in
  Format.printf "sorted result gathered on rank 0:@.  [%s]@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int sorted)));
  Format.printf "wall clock: %.6f s on %d process(es); %d messages over the sockets@."
    stats.Machine.Procs.wall stats.Machine.Procs.procs_used stats.Machine.Procs.total_msgs;
  let check = Array.copy data in
  Array.sort compare check;
  assert (sorted = check);
  Format.printf "verified against sequential sort. ok.@."

let () =
  (match engine with
  | "multicore" ->
      run_multicore ();
      exit 0
  | "procs" ->
      run_procs ();
      exit 0
  | "sim" -> ()
  | other ->
      Format.eprintf "unknown --engine %S (expected sim, multicore or procs)@." other;
      exit 2);
  let rng = Runtime.Xoshiro.of_seed 1995 in
  let data = Runtime.Xoshiro.int_array rng ~len:32 ~bound:100 in
  Format.printf "=== Hyperquicksort on a 2-dimensional hypercube (Figure 2) ===@.@.";
  Format.printf "unsorted input on processor 0:@.  [%s]@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int data)));
  (* A second, instrumented run for the timeline picture. *)
  let trace = Machine.Trace.create () in
  let _ = Algorithms.Hyperquicksort.sort_sim ~trace ~procs:4 data in
  let sorted, stats, notes = Algorithms.Hyperquicksort.sort_sim_traced ~procs:4 data in
  let last_proc = ref (-1) in
  List.iter
    (fun (time, proc, msg) ->
      if proc <> !last_proc then Format.printf "@.";
      last_proc := proc;
      Format.printf "[t=%8.6fs] p%d  %s@." time proc msg)
    notes;
  Format.printf "@.sorted result gathered on processor 0:@.  [%s]@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int sorted)));
  Format.printf "simulated makespan: %.6f s on the AP1000 cost model@." stats.Machine.Sim.makespan;
  Format.printf "messages: %d (%d bytes), barrier-free (pairwise exchanges only)@."
    stats.Machine.Sim.total_msgs stats.Machine.Sim.total_bytes;
  Format.printf "@.timeline:@.%a@.@." (Machine.Trace.pp_gantt ~width:72) trace;
  (match chrome_out with
  | Some path ->
      Machine.Trace.write_chrome path trace;
      Format.printf "chrome trace written to %s (load in chrome://tracing or Perfetto)@.@." path
  | None -> ());
  let check = Array.copy data in
  Array.sort compare check;
  assert (sorted = check);
  Format.printf "verified against sequential sort. ok.@."
