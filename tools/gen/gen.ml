(* Regenerates the checked-in Codegen outputs; the test suite asserts the
   files match. *)
let pipeline_src = "fold add . map square . rotate 3 . iter 2 [ map incr ] . fetch reverse"

(* A nested pipeline compiled as-is: the segmented region emits flat maps. *)
let seg_pipeline_src = "fold add . combine . mapn [ map square . map incr ] . split 4"

(* A float pipeline compiled to the unboxed flat host kernels: the trailing
   map fuses into the scan, the next into the fold (fmap_scan / fmap_fold). *)
let flat_pipeline_src = "fold fadd . map fdouble . scan fadd . map fhalve . map fincr"

let write path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let e = Transform.Parser.parse_exn pipeline_src in
  write "examples/generated/generated_pipeline.ml" (Transform.Codegen.generate ~name:"run_pipeline" e);
  write "examples/generated/generated_pipeline_host.ml"
    (Transform.Codegen.generate_host ~name:"run_pipeline" e);
  let seg = Transform.Parser.parse_exn seg_pipeline_src in
  write "examples/generated/generated_pipeline_seg.ml"
    (Transform.Codegen.generate ~name:"run_pipeline_seg" seg);
  write "examples/generated/generated_pipeline_seg_host.ml"
    (Transform.Codegen.generate_host ~name:"run_pipeline_seg" seg);
  let flat = Transform.Parser.parse_exn flat_pipeline_src in
  write "examples/generated/generated_pipeline_flat.ml"
    (Transform.Codegen.generate_host_flat ~name:"run_pipeline_flat" flat)
