(* Regenerates the checked-in Codegen outputs; the test suite asserts the
   files match. *)
let pipeline_src = "fold add . map square . rotate 3 . iter 2 [ map incr ] . fetch reverse"

(* A nested pipeline compiled as-is: the segmented region emits flat maps. *)
let seg_pipeline_src = "fold add . combine . mapn [ map square . map incr ] . split 4"

let write path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let e = Transform.Parser.parse_exn pipeline_src in
  write "examples/generated/generated_pipeline.ml" (Transform.Codegen.generate ~name:"run_pipeline" e);
  write "examples/generated/generated_pipeline_host.ml"
    (Transform.Codegen.generate_host ~name:"run_pipeline" e);
  let seg = Transform.Parser.parse_exn seg_pipeline_src in
  write "examples/generated/generated_pipeline_seg.ml"
    (Transform.Codegen.generate ~name:"run_pipeline_seg" seg);
  write "examples/generated/generated_pipeline_seg_host.ml"
    (Transform.Codegen.generate_host ~name:"run_pipeline_seg" seg)
