(* Cross-backend differential oracle + rule oracle driver.

   Usage:
     diffcheck [--budget N] [--seed S] [--rule-cases N] [--cost-cases N]
               [--tolerance F] [--no-pool] [--out FILE]

   Phases:
     1. rule oracle       — every rule in Transform.Rules.all gets
                            [--rule-cases] generated pipelines in which it
                            fires; eval (rewrite e) must equal eval e.
     2. cost consistency  — when the static cost model ranks the normal
                            form as cheaper, the simulated makespan must
                            not regress beyond [--tolerance].
     3. fused primitives  — [--fused-cases] random (map, op, input) cases
                            check that the fused Exec primitives
                            (map_fold / map_scan / map_compose) agree with
                            their composed forms on both backends, over
                            ints, dyadic floats and pairs.
     4. differential      — [--budget] random pipelines (int, float, pair
                            elements; possibly empty) are run through the
                            reference interpreter, Host_exec seq and pool
                            (each also with ~optimize:true), and Sim_exec
                            at procs 1/2/4 (flat pipelines only); all must
                            agree.

   On failure: prints the shrunk counterexample (Ast.to_string + input +
   seed + case index), optionally writes it to --out, exits 1.
   Exit codes: 0 all pass, 1 divergence found, 2 usage error / gave up. *)

let usage =
  "diffcheck [--budget N] [--seed S] [--rule-cases N] [--cost-cases N] [--fused-cases N] \
   [--tolerance F] [--no-pool] [--out FILE]"

let failures : string list ref = ref []

let record_failure ~phase print (f : _ Prop.Runner.failure) =
  let text =
    Fmt.str "@[<v>phase: %s@,%a@]" phase (Prop.Runner.pp_failure print) f
  in
  Printf.printf "FAIL  %s\n%s\n" phase text;
  failures := text :: !failures

let report ~phase print outcome =
  match outcome with
  | Prop.Runner.Pass { checked; discarded } ->
      Printf.printf "ok    %-40s %d cases (%d discarded)\n%!" phase checked discarded;
      true
  | Prop.Runner.Gave_up { checked; discarded } ->
      Printf.printf "GAVE UP %-38s after %d cases (%d discarded)\n%!" phase checked discarded;
      exit 2
  | Prop.Runner.Fail f ->
      record_failure ~phase print f;
      false

let () =
  let budget = ref 500 in
  let seed = ref 42 in
  let rule_cases = ref 100 in
  let cost_cases = ref 100 in
  let fused_cases = ref 200 in
  let tolerance = ref 1.25 in
  let no_pool = ref false in
  let out = ref "" in
  let spec =
    [
      ("--budget", Arg.Set_int budget, "N differential pipelines to generate (default 500)");
      ("--seed", Arg.Set_int seed, "S master PRNG seed (default 42)");
      ("--rule-cases", Arg.Set_int rule_cases, "N firing cases per rule (default 100)");
      ("--cost-cases", Arg.Set_int cost_cases, "N cost-consistency cases (default 100)");
      ("--fused-cases", Arg.Set_int fused_cases, "N fused-primitive cases (default 200)");
      ( "--tolerance",
        Arg.Set_float tolerance,
        "F allowed simulated-makespan regression factor (default 1.25)" );
      ("--no-pool", Arg.Set no_pool, " skip the multicore pool backend");
      ("--out", Arg.Set_string out, "FILE write failing seed + counterexample to FILE");
    ]
  in
  (try Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage
   with Arg.Bad m ->
     prerr_endline m;
     exit 2);
  let config count = { Prop.Runner.default with count; seed = !seed } in
  Printf.printf "diffcheck: seed %d, budget %d, %d cases/rule\n%!" !seed !budget !rule_cases;

  (* phase 1: rule oracle *)
  let ok_rules =
    List.for_all
      (fun (rule : Transform.Rules.rule) ->
        report
          ~phase:(Printf.sprintf "rule %s" rule.Transform.Rules.rname)
          Prop.Pipe_gen.print
          (Prop.Oracle.check_rule ~config:(config !rule_cases) rule))
      Transform.Rules.all
  in

  (* phase 2: cost-model consistency *)
  let ok_cost =
    report ~phase:"cost-vs-simulator" Prop.Pipe_gen.print
      (Prop.Oracle.check_cost ~config:(config !cost_cases) ~procs:4 ~tolerance:!tolerance ())
  in

  (* phases 3 and 4 share the pool backend *)
  let pool = if !no_pool then None else Some (Runtime.Pool.create ~num_domains:3 ()) in
  let stats = Prop.Oracle.new_stats () in
  let ok_fused, ok_diff =
    Fun.protect
      ~finally:(fun () -> Option.iter Runtime.Pool.teardown pool)
      (fun () ->
        let pool_exec = Option.map Scl.Exec.on_pool pool in
        (* phase 3: fused primitives vs composed forms *)
        let ok_fused =
          report ~phase:"fused-primitives" Prop.Oracle.print_fused
            (Prop.Oracle.check_fused ~config:(config !fused_cases) ?pool_exec ())
        in
        (* phase 4: differential oracle *)
        let ok_diff =
          report ~phase:"differential" Prop.Pipe_gen.print
            (Prop.Oracle.check_differential ~config:(config !budget) ?pool_exec ~stats
               ~sim_procs:[ 1; 2; 4 ] ())
        in
        (ok_fused, ok_diff))
  in
  Printf.printf "differential: %d compared, %d on simulator, %d sim-skipped (nested)\n%!"
    stats.Prop.Oracle.compared stats.Prop.Oracle.sim_ran stats.Prop.Oracle.sim_skipped;

  if ok_rules && ok_cost && ok_fused && ok_diff then begin
    Printf.printf "diffcheck: all oracles agree (seed %d)\n" !seed;
    exit 0
  end
  else begin
    if !out <> "" then begin
      let oc = open_out !out in
      Printf.fprintf oc "seed: %d\n%s\n" !seed (String.concat "\n---\n" (List.rev !failures));
      close_out oc;
      Printf.printf "wrote counterexample(s) to %s\n" !out
    end;
    exit 1
  end
