(* Cross-backend differential oracle + rule oracle driver.

   Usage:
     diffcheck [--budget N] [--seed S] [--rule-cases N] [--cost-cases N]
               [--search-cases N] [--tolerance F] [--no-pool] [--out FILE]

   Phases:
     0. procs equivalence — hyperquicksort and the collective battery
                            must produce identical values on the
                            simulator and on the forked-process engine
                            [Machine.Procs] at p ∈ {1, 2, 4}, and the
                            farm must survive a seeded chaos worker
                            crash on real processes (the crash is a
                            child dying with its sockets) with the dead
                            rank reported in [stats.crashed].  Runs
                            FIRST: OCaml permanently refuses Unix.fork
                            once any other domain has ever been created
                            in the process.
     1. rule oracle       — every rule in Transform.Rules.all gets
                            [--rule-cases] generated pipelines in which it
                            fires; eval (rewrite e) must equal eval e.
     2. cost consistency  — when the static cost model ranks the normal
                            form as cheaper, the simulated makespan must
                            not regress beyond [--tolerance].
     3. fused primitives  — [--fused-cases] random (map, op, input) cases
                            check that the fused Exec primitives
                            (map_fold / map_scan / map_compose) agree with
                            their composed forms on both backends, over
                            ints, dyadic floats and pairs.
     4. differential      — [--budget] random pipelines (int, float, pair
                            elements; possibly empty) are run through the
                            reference interpreter, Host_exec seq and pool
                            (each also with ~optimize:true), and Sim_exec
                            at procs 1/2/4 (flat pipelines only); all must
                            agree.
     5. engine equivalence — [--engine-cases] seeded inputs per program:
                            hyperquicksort, Cannon, and a collective
                            battery (allreduce/scan/allgather) must
                            produce identical values on the simulator and
                            on the real-domain multicore engine at
                            p ∈ {1, 2, 4} (grids 1 and 2 for Cannon).
                            The forked-process legs of the same programs
                            live in phase 0.
     6. topology cost     — for a hypercube-exchange program
                            (hyperquicksort), the simulated makespan on a
                            Hypercube must not exceed the makespan on a
                            Ring (where cube neighbours are multi-hop), at
                            p ∈ {4, 8} over fixed seeds.
     7. fault injection   — [--fault-cases] seeded chaos schedules: the
                            collective battery (with reduce swept over all
                            roots, non-commutative op) under delay/reorder
                            and straggler chaos must be value-identical to
                            the fault-free run at p ∈ {2, 4, 8} on the
                            simulator (plus one delay case on the real
                            multicore engine); a single worker crash
                            mid-farm must still yield the complete result
                            set (the real-process variant is phase 0);
                            and the zero-fault chaos wrapper must be
                            bit-identical to the unwrapped simulated run.
     8. search oracle     — [--search-cases] seeded pipelines: the beam
                            search must never pick a plan the cost model
                            ranks above greedy's, searched plans must
                            preserve meaning (simulated makespan within
                            [--tolerance] of greedy's when both plans run
                            on the simulator), and nested pipelines must
                            be value-identical across the reference
                            interpreter, the host backend and Sim_exec at
                            p ∈ {1, 2, 4} — before and after beam
                            optimisation (the segmented-flattening
                            differential).
     9. flat-vs-boxed     — [--flat-cases] seeded workloads per solver:
                            the unboxed Bigarray ports of jacobi, heat2d
                            and cg must be bitwise-identical (iteration
                            counts and every solution float) to the boxed
                            oracles at the same process count, on the
                            simulator at p ∈ {1, 2, 4} (heat2d {1, 4})
                            and on the multicore engine at p = 3.  Also
                            the host-flat legs: the unboxed Flat_exec
                            kernels (sequential and pool) vs the boxed
                            Scl skeletons, the Host_exec flat fast path
                            vs the reference interpreter, and the
                            flat-int hyperquicksort vs the boxed
                            simulator program — all bitwise, on dyadic
                            data.

   Workload parameters in phases 5–7 (input lengths, value bounds, matrix
   sizes, chaos probabilities, crash points) are derived from the case
   seed, so a nightly run with a random --seed explores different
   workloads, not merely different data for a fixed shape.

   [--only-engines] restricts the run to phases 0, 5 and 7 (the engine
   backends and the fault injector) — the cheap cross-engine gate CI
   runs per-push without paying for the full pipeline oracles.

   On failure: prints the shrunk counterexample (Ast.to_string + input +
   seed + case index), optionally writes it to --out, exits 1.
   Exit codes: 0 all pass, 1 divergence found, 2 usage error / gave up. *)

let usage =
  "diffcheck [--budget N] [--seed S] [--rule-cases N] [--cost-cases N] [--fused-cases N] \
   [--engine-cases N] [--fault-cases N] [--search-cases N] [--flat-cases N] [--tolerance F] \
   [--only-engines] [--no-pool] [--out FILE]"

let failures : string list ref = ref []

let record_failure ~phase print (f : _ Prop.Runner.failure) =
  let text =
    Fmt.str "@[<v>phase: %s@,%a@]" phase (Prop.Runner.pp_failure print) f
  in
  Printf.printf "FAIL  %s\n%s\n" phase text;
  failures := text :: !failures

(* Hand-rolled check for the non-Runner phases (5 and 6): [cases] is a list
   of (label, thunk) pairs; a thunk returns None on success and a
   counterexample description on divergence. *)
let report_checks ~phase (cases : (string * (unit -> string option)) list) : bool =
  let bad =
    List.filter_map
      (fun (label, check) ->
        match check () with
        | None -> None
        | Some detail -> Some (Printf.sprintf "%s: %s" label detail)
        | exception e -> Some (Printf.sprintf "%s: raised %s" label (Printexc.to_string e)))
      cases
  in
  match bad with
  | [] ->
      Printf.printf "ok    %-40s %d cases (0 discarded)\n%!" phase (List.length cases);
      true
  | _ ->
      let text =
        Printf.sprintf "phase: %s\n%s" phase (String.concat "\n" bad)
      in
      Printf.printf "FAIL  %s\n%s\n" phase text;
      failures := text :: !failures;
      false

let report ~phase print outcome =
  match outcome with
  | Prop.Runner.Pass { checked; discarded } ->
      Printf.printf "ok    %-40s %d cases (%d discarded)\n%!" phase checked discarded;
      true
  | Prop.Runner.Gave_up { checked; discarded } ->
      Printf.printf "GAVE UP %-38s after %d cases (%d discarded)\n%!" phase checked discarded;
      exit 2
  | Prop.Runner.Fail f ->
      record_failure ~phase print f;
      false

let () =
  let budget = ref 500 in
  let seed = ref 42 in
  let rule_cases = ref 100 in
  let cost_cases = ref 100 in
  let fused_cases = ref 200 in
  let engine_cases = ref 3 in
  let fault_cases = ref 3 in
  let search_cases = ref 3 in
  let flat_cases = ref 3 in
  let tolerance = ref 1.25 in
  let only_engines = ref false in
  let no_pool = ref false in
  let out = ref "" in
  let spec =
    [
      ("--budget", Arg.Set_int budget, "N differential pipelines to generate (default 500)");
      ("--seed", Arg.Set_int seed, "S master PRNG seed (default 42)");
      ("--rule-cases", Arg.Set_int rule_cases, "N firing cases per rule (default 100)");
      ("--cost-cases", Arg.Set_int cost_cases, "N cost-consistency cases (default 100)");
      ("--fused-cases", Arg.Set_int fused_cases, "N fused-primitive cases (default 200)");
      ( "--engine-cases",
        Arg.Set_int engine_cases,
        "N seeded inputs per engine-equivalence program (default 3)" );
      ( "--fault-cases",
        Arg.Set_int fault_cases,
        "N seeded chaos schedules for the fault-injection phase (default 3)" );
      ( "--search-cases",
        Arg.Set_int search_cases,
        "N seeded search-vs-greedy + flattening differentials (default 3)" );
      ( "--flat-cases",
        Arg.Set_int flat_cases,
        "N seeded flat-vs-boxed solver differentials (default 3)" );
      ( "--tolerance",
        Arg.Set_float tolerance,
        "F allowed simulated-makespan regression factor (default 1.25)" );
      ( "--only-engines",
        Arg.Set only_engines,
        " run only the engine-equivalence and fault-injection phases (5 and 7)" );
      ("--no-pool", Arg.Set no_pool, " skip the multicore pool backend");
      ("--out", Arg.Set_string out, "FILE write failing seed + counterexample to FILE");
    ]
  in
  (try Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage
   with Arg.Bad m ->
     prerr_endline m;
     exit 2);
  let config count = { Prop.Runner.default with count; seed = !seed } in
  let full = not !only_engines in
  Printf.printf "diffcheck: seed %d, budget %d, %d cases/rule%s\n%!" !seed !budget !rule_cases
    (if full then "" else " (engines-only)");

  let collective_battery (comm : Machine.Comm.t) =
    let open Machine in
    let p = Comm.size comm in
    let me = Comm.rank comm in
    let reduced = Comm.allreduce comm ( + ) (me + 1) in
    let scanned = Comm.scan comm ( + ) (me + 1) in
    let gathered = Comm.allgather comm (me * me) in
    let transposed = Comm.alltoall comm (Array.init p (fun j -> (me * 100) + j)) in
    Option.map Array.to_list
      (Comm.gather comm ~root:0 (reduced, scanned, gathered, transposed))
  in

  (* phase 0: forked-process engine equivalence + faults.  This MUST run
     first: OCaml permanently refuses [Unix.fork] once any other domain
     has EVER been created in the process, so every [Machine.Procs] leg
     has to run before the pool phases or any multicore case spawns a
     domain. *)
  let ok_procs =
    let open Machine in
    let cases = ref [] in
    let add label f = cases := (label, f) :: !cases in
    for k = 0 to !engine_cases - 1 do
      let case_seed = !seed + (1009 * k) in
      let shape = Runtime.Xoshiro.of_seed (case_seed lxor 0x5eed) in
      let len = 64 * (4 + Runtime.Xoshiro.int shape 12) in
      let bound = 1_000 + Runtime.Xoshiro.int shape 99_000 in
      List.iter
        (fun procs ->
          add
            (Printf.sprintf "hyperquicksort procs p=%d len=%d bound=%d seed=%d" procs len bound
               case_seed)
            (fun () ->
              let rng = Runtime.Xoshiro.of_seed case_seed in
              let data = Runtime.Xoshiro.int_array rng ~len ~bound in
              let s, _ = Algorithms.Hyperquicksort.sort_sim ~procs data in
              let f, _ = Algorithms.Hyperquicksort.sort_procs ~procs data in
              if s = f then None else Some "sim and forked-process outputs differ");
          add
            (Printf.sprintf "collectives procs p=%d seed=%d" procs case_seed)
            (fun () ->
              let s, _ = Scl_sim.Spmd.run_collect ~procs collective_battery in
              let f, _ = Scl_sim.Spmd.run_procs_collect ~procs collective_battery in
              if s = f then None else Some "forked-process collective values differ"))
        [ 1; 2; 4 ]
    done;
    for k = 0 to !fault_cases - 1 do
      let case_seed = !seed + (1013 * k) in
      let shape = Runtime.Xoshiro.of_seed (case_seed lxor 0x9c5) in
      let crash_op = 1 + Runtime.Xoshiro.int shape 10 in
      add
        (Printf.sprintf "farm worker crash procs op=%d seed=%d" crash_op case_seed)
        (fun () ->
          (* a chaos crash on this engine is a forked child dying with
             its sockets; recovery is the master's grace timeouts +
             re-dealing over the live pipes *)
          let njobs = 24 + Runtime.Xoshiro.int shape 24 in
          let spec = Algorithms.Farm_sim.skewed_spec ~njobs ~skew:6 in
          let victim = 1 + Runtime.Xoshiro.int shape 3 in
          let chaos = { Chaos.none with Chaos.crashes = [ (victim, crash_op) ] } in
          let got, stats = Algorithms.Farm_sim.dynamic_procs ~procs:4 ~grace:0.5 ~chaos spec in
          if got <> Array.init njobs (fun i -> i * i) then
            Some "procs farm lost or corrupted results under a worker crash"
          else if stats.Procs.crashed <> [ victim ] then
            Some
              (Printf.sprintf "procs farm crash list wrong: expected [%d], got [%s]" victim
                 (String.concat "; " (List.map string_of_int stats.Procs.crashed)))
          else None)
    done;
    report_checks ~phase:"procs-equivalence + faults" (List.rev !cases)
  in

  (* phase 1: rule oracle *)
  let ok_rules =
    full = false
    || List.for_all
      (fun (rule : Transform.Rules.rule) ->
        report
          ~phase:(Printf.sprintf "rule %s" rule.Transform.Rules.rname)
          Prop.Pipe_gen.print
          (Prop.Oracle.check_rule ~config:(config !rule_cases) rule))
      Transform.Rules.all
  in

  (* phase 2: cost-model consistency *)
  let ok_cost =
    (not full)
    || report ~phase:"cost-vs-simulator" Prop.Pipe_gen.print
         (Prop.Oracle.check_cost ~config:(config !cost_cases) ~procs:4 ~tolerance:!tolerance ())
  in

  (* phases 3 and 4 share the pool backend *)
  let ok_fused, ok_diff =
    if not full then (true, true)
    else begin
      let pool = if !no_pool then None else Some (Runtime.Pool.create ~num_domains:3 ()) in
      let stats = Prop.Oracle.new_stats () in
      let ok_fused, ok_diff =
        Fun.protect
          ~finally:(fun () -> Option.iter Runtime.Pool.teardown pool)
          (fun () ->
            let pool_exec = Option.map Scl.Exec.on_pool pool in
            (* phase 3: fused primitives vs composed forms *)
            let ok_fused =
              report ~phase:"fused-primitives" Prop.Oracle.print_fused
                (Prop.Oracle.check_fused ~config:(config !fused_cases) ?pool_exec ())
            in
            (* phase 4: differential oracle *)
            let ok_diff =
              report ~phase:"differential" Prop.Pipe_gen.print
                (Prop.Oracle.check_differential ~config:(config !budget) ?pool_exec ~stats
                   ~sim_procs:[ 1; 2; 4 ] ())
            in
            (ok_fused, ok_diff))
      in
      Printf.printf "differential: %d compared, %d on simulator, %d sim-skipped (nested)\n%!"
        stats.Prop.Oracle.compared stats.Prop.Oracle.sim_ran stats.Prop.Oracle.sim_skipped;
      (ok_fused, ok_diff)
    end
  in

  (* phase 5: engine equivalence — identical values from the simulator and
     the real-domain multicore engine for the same SPMD program.  (The
     forked-process legs are phase 0: fork must precede any domain.) *)
  let ok_engine =
    let cases = ref [] in
    let add label f = cases := (label, f) :: !cases in
    for k = 0 to !engine_cases - 1 do
      let case_seed = !seed + (1009 * k) in
      (* workload shape derived from the seed too: a nightly run with a
         random seed explores different lengths/bounds/matrix sizes, not
         merely different data for one fixed shape *)
      let shape = Runtime.Xoshiro.of_seed (case_seed lxor 0x5eed) in
      let len = 64 * (4 + Runtime.Xoshiro.int shape 12) (* 256..1024, all p divide *) in
      let bound = 1_000 + Runtime.Xoshiro.int shape 99_000 in
      let blk = 3 + Runtime.Xoshiro.int shape 6 (* cannon block edge 3..8 *) in
      List.iter
        (fun procs ->
          add
            (Printf.sprintf "hyperquicksort p=%d len=%d bound=%d seed=%d" procs len bound case_seed)
            (fun () ->
              let rng = Runtime.Xoshiro.of_seed case_seed in
              let data = Runtime.Xoshiro.int_array rng ~len ~bound in
              let s, _ = Algorithms.Hyperquicksort.sort_sim ~procs data in
              let m, _ = Algorithms.Hyperquicksort.sort_multicore ~procs data in
              if s = m then None else Some "sim and multicore outputs differ");
          add
            (Printf.sprintf "collectives p=%d seed=%d" procs case_seed)
            (fun () ->
              let s, _ = Scl_sim.Spmd.run_collect ~procs collective_battery in
              let m, _ = Scl_sim.Spmd.run_multicore_collect ~procs collective_battery in
              if s = m then None else Some "collective values differ"))
        [ 1; 2; 4 ];
      List.iter
        (fun grid ->
          add
            (Printf.sprintf "cannon grid=%d n=%d seed=%d" grid (blk * grid) case_seed)
            (fun () ->
              let n = blk * grid in
              let a = Algorithms.Cannon.random_matrix ~seed:case_seed n in
              let b = Algorithms.Cannon.random_matrix ~seed:(case_seed + 1) n in
              let s, _ = Algorithms.Cannon.multiply_sim ~grid a b in
              let m, _ = Algorithms.Cannon.multiply_multicore ~grid a b in
              if s = m then None else Some "cannon products differ"))
        [ 1; 2 ]
    done;
    report_checks ~phase:"engine-equivalence" (List.rev !cases)
  in

  (* phase 6: topology cost — hyperquicksort's messages all travel between
     hypercube neighbours (XOR partners), so pricing the run on a Ring
     (where those partners are multi-hop) must never be cheaper than on the
     Hypercube. *)
  let ok_topo =
    if not full then true
    else begin
    let open Machine in
    let cases =
      List.concat_map
        (fun procs ->
          List.init 2 (fun k ->
              let case_seed = !seed + (77 * k) in
              ( Printf.sprintf "hyperquicksort p=%d seed=%d" procs case_seed,
                fun () ->
                  let rng = Runtime.Xoshiro.of_seed case_seed in
                  let data = Runtime.Xoshiro.int_array rng ~len:1024 ~bound:100_000 in
                  let _, cube =
                    Algorithms.Hyperquicksort.sort_sim ~topology:Topology.Hypercube ~procs data
                  in
                  let _, ring =
                    Algorithms.Hyperquicksort.sort_sim ~topology:Topology.Ring ~procs data
                  in
                  if cube.Sim.makespan <= ring.Sim.makespan *. (1.0 +. 1e-9) then None
                  else
                    Some
                      (Printf.sprintf "hypercube makespan %.9g > ring %.9g" cube.Sim.makespan
                         ring.Sim.makespan) )))
        [ 4; 8 ]
    in
    report_checks ~phase:"topology-cost (hypercube <= ring)" cases
    end
  in

  (* phase 7: fault injection — chaos schedules must never change values,
     and the crash-tolerant farm must complete under a single worker
     crash.  All chaos parameters derive from the case seed. *)
  let ok_fault =
    let open Machine in
    (* every collective, with reduce swept over ALL roots using a
       non-commutative operator — the rotated-root ordering trap *)
    let chaos_battery (comm : Comm.t) =
      let p = Comm.size comm in
      let me = Comm.rank comm in
      let reduces = List.init p (fun root -> Comm.reduce comm ~root ( ^ ) (string_of_int me)) in
      let ar = Comm.allreduce comm ( ^ ) (string_of_int me) in
      let sc = Comm.scan comm ( ^ ) (string_of_int me) in
      let ag = Comm.allgather comm (me * me) in
      let at = Comm.alltoall comm (Array.init p (fun j -> (me * 100) + j)) in
      Option.map Array.to_list (Comm.gather comm ~root:0 (reduces, ar, sc, ag, at))
    in
    let cases = ref [] in
    let add label f = cases := (label, f) :: !cases in
    for k = 0 to !fault_cases - 1 do
      let case_seed = !seed + (1013 * k) in
      let shape = Runtime.Xoshiro.of_seed (case_seed lxor 0xfa17) in
      let prob = 0.1 +. (0.8 *. Runtime.Xoshiro.float shape 1.0) in
      let max_hold = 1 + Runtime.Xoshiro.int shape 4 in
      let stall = 1e-4 +. Runtime.Xoshiro.float shape 1e-3 in
      let crash_op = 1 + Runtime.Xoshiro.int shape 10 in
      List.iter
        (fun procs ->
          add
            (Printf.sprintf "chaos-delay p=%d prob=%.2f hold=%d seed=%d" procs prob max_hold
               case_seed)
            (fun () ->
              let bare, _ = Scl_sim.Spmd.run_collect ~procs chaos_battery in
              let spec = Chaos.delays ~seed:case_seed ~prob ~max_hold () in
              let v, _ = Scl_sim.Spmd.run_collect ~procs ~chaos:spec chaos_battery in
              if v = bare then None else Some "delay chaos changed collective values");
          add
            (Printf.sprintf "chaos-straggler p=%d stall=%.2gs seed=%d" procs stall case_seed)
            (fun () ->
              let bare, _ = Scl_sim.Spmd.run_collect ~procs chaos_battery in
              let straggler = 1 + Runtime.Xoshiro.int shape (procs - 1) in
              let spec = { Chaos.none with Chaos.stalls = [ (straggler, stall) ] } in
              let v, _ = Scl_sim.Spmd.run_collect ~procs ~chaos:spec chaos_battery in
              if v = bare then None else Some "straggler chaos changed collective values"))
        [ 2; 4; 8 ];
      add
        (Printf.sprintf "chaos-delay multicore p=4 seed=%d" case_seed)
        (fun () ->
          let bare, _ = Scl_sim.Spmd.run_multicore_collect ~procs:4 chaos_battery in
          let spec = Chaos.delays ~seed:case_seed ~prob ~max_hold () in
          let v, _ = Scl_sim.Spmd.run_multicore_collect ~procs:4 ~chaos:spec chaos_battery in
          if v = bare then None else Some "delay chaos changed multicore values");
      add
        (Printf.sprintf "farm worker crash op=%d seed=%d" crash_op case_seed)
        (fun () ->
          let njobs = 24 + Runtime.Xoshiro.int shape 24 in
          let spec = Algorithms.Farm_sim.skewed_spec ~njobs ~skew:6 in
          let victim = 1 + Runtime.Xoshiro.int shape 3 in
          let chaos = { Chaos.none with Chaos.crashes = [ (victim, crash_op) ] } in
          let got, _ = Algorithms.Farm_sim.dynamic ~procs:4 ~grace:0.5 ~chaos spec in
          if got = Array.init njobs (fun i -> i * i) then None
          else Some "farm lost or corrupted results under a worker crash");
      add
        (Printf.sprintf "zero-fault wrap bit-identical seed=%d" case_seed)
        (fun () ->
          let bare, s0 = Scl_sim.Spmd.run_collect ~procs:4 chaos_battery in
          let v, s1 = Scl_sim.Spmd.run_collect ~procs:4 ~chaos:Chaos.none chaos_battery in
          if v = bare && s0.Sim.makespan = s1.Sim.makespan && s0.Sim.total_msgs = s1.Sim.total_msgs
          then None
          else
            Some
              (Printf.sprintf "wrapped run diverged: makespan %.9g vs %.9g, msgs %d vs %d"
                 s0.Sim.makespan s1.Sim.makespan s0.Sim.total_msgs s1.Sim.total_msgs))
    done;
    report_checks ~phase:"fault-injection" (List.rev !cases)
  in

  (* phase 8: search oracle — beam search never beaten by greedy on the
     cost model, searched plans preserve meaning and makespan, and nested
     pipelines agree across all backends before and after optimisation. *)
  let ok_search =
    if not full then true
    else begin
    let open Transform in
    let gen_nested =
      let open Prop.Gen in
      let* n = int_range 1 16 in
      let* p = int_range 1 n in
      let* body = Prop.Pipe_gen.gen_ctx ~max_stages:3 in
      let* post = Prop.Pipe_gen.gen_ctx ~max_stages:2 in
      let+ input = Prop.Pipe_gen.gen_input ~n in
      {
        Prop.Pipe_gen.chain =
          Ast.Split p :: Ast.Map_nested (Ast.of_chain body) :: Ast.Combine :: post;
        input;
      }
    in
    let input_len v = match v with Value.Arr a -> max 1 (Array.length a) | _ -> 1 in
    let cases = ref [] in
    let add label f = cases := (label, f) :: !cases in
    for k = 0 to !search_cases - 1 do
      let case_seed = !seed + (1031 * k) in
      let c = Prop.Gen.generate ~seed:case_seed (Prop.Pipe_gen.gen ()) in
      let e = Prop.Pipe_gen.expr c in
      let n = input_len c.Prop.Pipe_gen.input in
      let greedy () = Optimizer.optimize ~procs:4 ~n ~strategy:Optimizer.Greedy e in
      let beam () = Optimizer.optimize ~procs:4 ~n ~strategy:Optimizer.default_beam e in
      add
        (Printf.sprintf "search-vs-greedy seed=%d" case_seed)
        (fun () ->
          let g = greedy () and b = beam () in
          if b.Optimizer.cost_after > g.Optimizer.cost_after +. 1e-12 then
            Some
              (Printf.sprintf "beam cost %.6g > greedy %.6g on %s" b.Optimizer.cost_after
                 g.Optimizer.cost_after (Ast.to_string e))
          else
            match Ast.eval e c.Prop.Pipe_gen.input with
            | exception Value.Type_error _ -> None (* intentionally-partial case *)
            | expected -> (
                match Ast.eval b.Optimizer.output c.Prop.Pipe_gen.input with
                | exception ex ->
                    Some
                      (Printf.sprintf "beam plan raised %s on %s" (Printexc.to_string ex)
                         (Ast.to_string e))
                | got ->
                    if Value.equal expected got then None
                    else Some ("beam plan changed the value of " ^ Ast.to_string e)));
      add
        (Printf.sprintf "search-makespan seed=%d" case_seed)
        (fun () ->
          let g = greedy () and b = beam () in
          let sim_ok plan =
            Prop.Pipe_gen.sim_executable { c with Prop.Pipe_gen.chain = Ast.to_chain plan }
          in
          if not (sim_ok g.Optimizer.output && sim_ok b.Optimizer.output) then None
          else
            match
              ( Sim_exec.run ~procs:4 g.Optimizer.output c.Prop.Pipe_gen.input,
                Sim_exec.run ~procs:4 b.Optimizer.output c.Prop.Pipe_gen.input )
            with
            | exception Value.Type_error _ -> None
            | (_, sg), (_, sb) ->
                if sb.Machine.Sim.makespan <= (sg.Machine.Sim.makespan *. !tolerance) +. 1e-9
                then None
                else
                  Some
                    (Printf.sprintf "searched makespan %.6g > greedy %.6g * tolerance on %s"
                       sb.Machine.Sim.makespan sg.Machine.Sim.makespan (Ast.to_string e)));
      let nc = Prop.Gen.generate ~seed:(case_seed lxor 0x5ea) gen_nested in
      add
        (Printf.sprintf "flattening-differential seed=%d" case_seed)
        (fun () ->
          let ne = Prop.Pipe_gen.expr nc in
          let input = nc.Prop.Pipe_gen.input in
          match Ast.eval ne input with
          | exception Value.Type_error _ -> None
          | expected ->
              let nn = input_len input in
              let b = Optimizer.optimize ~procs:4 ~n:nn ~strategy:Optimizer.default_beam ne in
              let check_plan label plan =
                let host =
                  match Host_exec.eval plan input with
                  | v ->
                      if Value.equal expected v then None
                      else Some (Printf.sprintf "%s: host value differs" label)
                  | exception ex ->
                      Some (Printf.sprintf "%s: host raised %s" label (Printexc.to_string ex))
                in
                match host with
                | Some _ as bad -> bad
                | None ->
                    List.fold_left
                      (fun acc procs ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match Sim_exec.run ~procs plan input with
                            | got, _ ->
                                if Value.equal expected got then None
                                else
                                  Some (Printf.sprintf "%s: sim p=%d value differs" label procs)
                            | exception ex ->
                                Some
                                  (Printf.sprintf "%s: sim p=%d raised %s" label procs
                                     (Printexc.to_string ex))))
                      None [ 1; 2; 4 ]
              in
              (match check_plan (Printf.sprintf "nested %s" (Ast.to_string ne)) ne with
              | Some _ as bad -> bad
              | None ->
                  check_plan
                    (Printf.sprintf "beam plan %s" (Ast.to_string b.Optimizer.output))
                    b.Optimizer.output))
    done;
    report_checks ~phase:"search-vs-greedy + flattening" (List.rev !cases)
    end
  in

  (* phase 9: flat-vs-boxed differential — the unboxed Bigarray ports of
     jacobi/heat2d/cg against their boxed oracles at the same process
     count.  Same block geometry and local summation order, so the
     comparison is bitwise float equality on every solution component and
     exact equality on iteration counts — not an epsilon check.  Workload
     sizes and data derive from the case seed. *)
  let ok_flat =
    if not full then true
    else begin
    let vec_bitwise a b =
      Array.length a = Array.length b && Array.for_all2 Float.equal a b
    in
    let diverged label (r0_it, r0_sol) (r1_it, r1_sol) =
      if r0_it <> r1_it then
        Some (Printf.sprintf "%s: iterations %d (boxed) vs %d (flat)" label r0_it r1_it)
      else if not (vec_bitwise r0_sol r1_sol) then
        Some (label ^ ": solutions differ bitwise")
      else None
    in
    let cases = ref [] in
    let add label f = cases := (label, f) :: !cases in
    for k = 0 to !flat_cases - 1 do
      let case_seed = !seed + (1019 * k) in
      let shape = Runtime.Xoshiro.of_seed (case_seed lxor 0xf1a7) in
      let jn = 8 + Runtime.Xoshiro.int shape 56 in
      (* even: the boxed oracle decomposes on a qxq grid, so q=2 must
         divide the heat2d dimension at p=4 *)
      let hn = 2 * (3 + Runtime.Xoshiro.int shape 5) in
      let cn = 8 + Runtime.Xoshiro.int shape 40 in
      let rng = Runtime.Xoshiro.of_seed case_seed in
      let jf = Array.init jn (fun _ -> Runtime.Xoshiro.float rng 4.0 -. 2.0) in
      let hf = Array.init hn (fun _ -> Array.init hn (fun _ -> Runtime.Xoshiro.float rng 2.0)) in
      let cb = Array.init cn (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0) in
      List.iter
        (fun procs ->
          add
            (Printf.sprintf "jacobi flat=boxed sim p=%d n=%d seed=%d" procs jn case_seed)
            (fun () ->
              let r0, _ =
                Algorithms.Jacobi.solve_sim ~procs ~tol:1e-7 jf ~left:0.5 ~right:(-0.25)
              in
              let r1, _ =
                Algorithms.Jacobi.solve_sim_flat ~procs ~tol:1e-7 jf ~left:0.5 ~right:(-0.25)
              in
              diverged "jacobi"
                (r0.Algorithms.Jacobi.iterations, r0.Algorithms.Jacobi.solution)
                (r1.Algorithms.Jacobi.iterations, r1.Algorithms.Jacobi.solution));
          add
            (Printf.sprintf "cg flat=boxed sim p=%d n=%d seed=%d" procs cn case_seed)
            (fun () ->
              let r0, _ = Algorithms.Cg.solve_sim ~procs ~tol:1e-10 cb in
              let r1, _ = Algorithms.Cg.solve_sim_flat ~procs ~tol:1e-10 cb in
              diverged "cg"
                (r0.Algorithms.Cg.iterations, r0.Algorithms.Cg.solution)
                (r1.Algorithms.Cg.iterations, r1.Algorithms.Cg.solution)))
        [ 1; 2; 4 ];
      List.iter
        (fun procs ->
          add
            (Printf.sprintf "heat2d flat=boxed sim p=%d n=%d seed=%d" procs hn case_seed)
            (fun () ->
              let r0, _ = Algorithms.Heat2d.solve_sim ~procs ~tol:1e-6 hf in
              let r1, _ = Algorithms.Heat2d.solve_sim_flat ~procs ~tol:1e-6 hf in
              if r0.Algorithms.Heat2d.iterations <> r1.Algorithms.Heat2d.iterations then
                Some
                  (Printf.sprintf "heat2d: iterations %d (boxed) vs %d (flat)"
                     r0.Algorithms.Heat2d.iterations r1.Algorithms.Heat2d.iterations)
              else if
                not
                  (Array.for_all2 vec_bitwise r0.Algorithms.Heat2d.solution
                     r1.Algorithms.Heat2d.solution)
              then Some "heat2d: solutions differ bitwise"
              else None))
        [ 1; 4 ];
      add
        (Printf.sprintf "jacobi flat multicore=sim p=3 n=%d seed=%d" jn case_seed)
        (fun () ->
          let r0, _ =
            Algorithms.Jacobi.solve_sim_flat ~procs:3 ~tol:1e-7 jf ~left:0.5 ~right:(-0.25)
          in
          let r1, _ =
            Algorithms.Jacobi.solve_multicore_flat ~procs:3 ~tol:1e-7 jf ~left:0.5 ~right:(-0.25)
          in
          diverged "jacobi multicore"
            (r0.Algorithms.Jacobi.iterations, r0.Algorithms.Jacobi.solution)
            (r1.Algorithms.Jacobi.iterations, r1.Algorithms.Jacobi.solution));
      add
        (Printf.sprintf "cg flat multicore=sim p=3 n=%d seed=%d" cn case_seed)
        (fun () ->
          let r0, _ = Algorithms.Cg.solve_sim_flat ~procs:3 ~tol:1e-10 cb in
          let r1, _ = Algorithms.Cg.solve_multicore_flat ~procs:3 ~tol:1e-10 cb in
          diverged "cg multicore"
            (r0.Algorithms.Cg.iterations, r0.Algorithms.Cg.solution)
            (r1.Algorithms.Cg.iterations, r1.Algorithms.Cg.solution));
      (* host-flat legs: the unboxed Flat_exec kernels (sequential and
         pool) against the boxed Scl skeletons, the Host_exec flat fast
         path against the reference interpreter, and the flat-int
         hyperquicksort against the boxed simulator program.  Dyadic data
         keeps parallel fadd reassociation exact, so every comparison is
         bitwise. *)
      let fn = 1 + Runtime.Xoshiro.int shape 64 in
      let fdata =
        Array.init fn (fun _ -> float_of_int (Runtime.Xoshiro.int rng 4096 - 2048) *. 0.25)
      in
      add
        (Printf.sprintf "flat host kernels = boxed n=%d seed=%d" fn case_seed)
        (fun () ->
          let pa = Scl.Par_array.of_array fdata in
          let fa = Scl.Flat.of_float_array fdata in
          let boxed_map = Scl.Par_array.to_array (Scl.map (fun x -> x *. 2.0) pa) in
          let boxed_fold = Scl.fold ( +. ) pa in
          let boxed_scan = Scl.Par_array.to_array (Scl.scan ( +. ) pa) in
          let boxed_mf = Scl.map_fold ( +. ) (fun x -> x +. 1.0) pa in
          let boxed_ms = Scl.Par_array.to_array (Scl.map_scan ( +. ) (fun x -> x *. 0.5) pa) in
          let pool = Runtime.Pool.create ~num_domains:2 () in
          Fun.protect
            ~finally:(fun () -> Runtime.Pool.teardown pool)
            (fun () ->
              List.fold_left
                (fun acc (bname, fx) ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      let open Scl.Flat_exec in
                      if
                        not
                          (vec_bitwise (Scl.Flat.to_float_array (fx.fmap (Scale 2.0) fa)) boxed_map)
                      then Some (bname ^ ": fmap differs from boxed map")
                      else if not (Float.equal (fx.ffold Add fa) boxed_fold) then
                        Some (bname ^ ": ffold differs from boxed fold")
                      else if
                        not (vec_bitwise (Scl.Flat.to_float_array (fx.fscan Add fa)) boxed_scan)
                      then Some (bname ^ ": fscan differs from boxed scan")
                      else if not (Float.equal (fx.fmap_fold (Offset 1.0) Add fa) boxed_mf) then
                        Some (bname ^ ": fmap_fold differs from boxed map_fold")
                      else if
                        not
                          (vec_bitwise
                             (Scl.Flat.to_float_array (fx.fmap_scan (Scale 0.5) Add fa))
                             boxed_ms)
                      then Some (bname ^ ": fmap_scan differs from boxed map_scan")
                      else None)
                None
                [ ("seq", Scl.Flat_exec.sequential); ("pool", Scl.Flat_exec.on_pool pool) ]));
      add
        (Printf.sprintf "host-exec flat pipeline = reference n=%d seed=%d" fn case_seed)
        (fun () ->
          let e =
            Transform.Parser.parse_exn "fold fadd . map fdouble . scan fadd . map fhalve . map fincr"
          in
          let v = Transform.Value.Arr (Array.map (fun x -> Transform.Value.Float x) fdata) in
          let expected = Transform.Ast.eval e v in
          let pool = Runtime.Pool.create ~num_domains:2 () in
          Fun.protect
            ~finally:(fun () -> Runtime.Pool.teardown pool)
            (fun () ->
              let host_seq = Transform.Host_exec.eval e v in
              let host_pool =
                Transform.Host_exec.eval ~exec:(Scl.Exec.on_pool pool)
                  ~fx:(Scl.Flat_exec.on_pool pool) e v
              in
              if not (Transform.Value.equal expected host_seq) then
                Some "host flat (seq) differs from reference"
              else if not (Transform.Value.equal expected host_pool) then
                Some "host flat (pool) differs from reference"
              else None));
      add
        (Printf.sprintf "hyperquicksort flatint=boxed sim p=4 seed=%d" case_seed)
        (fun () ->
          let sdata =
            Array.init (64 + Runtime.Xoshiro.int rng 192) (fun _ -> Runtime.Xoshiro.int rng 10_000)
          in
          let r0, _ = Algorithms.Hyperquicksort.sort_sim ~procs:4 sdata in
          let r1, _ = Algorithms.Hyperquicksort.sort_sim_flatint ~procs:4 sdata in
          if r0 <> r1 then Some "flat-int sort differs from boxed" else None)
    done;
    report_checks ~phase:"flat-vs-boxed solvers" (List.rev !cases)
    end
  in

  if
    ok_procs && ok_rules && ok_cost && ok_fused && ok_diff && ok_engine && ok_topo && ok_fault
    && ok_search && ok_flat
  then begin
    Printf.printf "diffcheck: all oracles agree (seed %d)\n" !seed;
    exit 0
  end
  else begin
    if !out <> "" then begin
      let oc = open_out !out in
      Printf.fprintf oc "seed: %d\n%s\n" !seed (String.concat "\n---\n" (List.rev !failures));
      close_out oc;
      Printf.printf "wrote counterexample(s) to %s\n" !out
    end;
    exit 1
  end
