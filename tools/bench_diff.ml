(* Compare two bench JSON artifacts (schema scl-bench/1, produced by
   `dune exec bench/main.exe -- --json FILE`).

   Usage:
     bench_diff BASELINE.json CANDIDATE.json [--threshold 0.25] [--warn-only]

   Exit codes:
     0  no regression beyond the threshold (or --warn-only)
     1  at least one benchmark regressed beyond the threshold
     2  usage or parse error

   Host wall-clock benchmarks are noisy on shared CI runners, which is why
   the default threshold is a generous 25% on medians and why CI starts
   warn-only; simulated benchmarks are deterministic, so any drift there
   beyond float noise is a real behavioural change. *)

let usage = "bench_diff BASELINE.json CANDIDATE.json [--threshold FRACTION] [--warn-only]"

let () =
  let threshold = ref 0.25 in
  let warn_only = ref false in
  let positional = ref [] in
  let spec =
    [
      ( "--threshold",
        Arg.Set_float threshold,
        "FRACTION tolerated relative slowdown of the median (default 0.25)" );
      ("--warn-only", Arg.Set warn_only, " report regressions but always exit 0");
    ]
  in
  (try Arg.parse spec (fun a -> positional := a :: !positional) usage
   with _ -> exit 2);
  let baseline_path, candidate_path =
    match List.rev !positional with
    | [ a; b ] -> (a, b)
    | _ ->
        prerr_endline usage;
        exit 2
  in
  let load path =
    match Obs.Artifact.load path with
    | Ok f -> f
    | Error e ->
        Printf.eprintf "bench_diff: %s\n" e;
        exit 2
  in
  let baseline = load baseline_path in
  let candidate = load candidate_path in
  let comparisons, missing, added =
    Obs.Artifact.compare_files ~threshold:!threshold ~baseline ~candidate ()
  in
  Printf.printf "bench_diff: %s -> %s (threshold %.0f%%)\n" baseline_path candidate_path
    (100.0 *. !threshold);
  Printf.printf "  %-28s %12s %12s %8s  %s\n" "benchmark" "old (s)" "new (s)" "ratio" "verdict";
  List.iter
    (fun (c : Obs.Artifact.comparison) ->
      Printf.printf "  %-28s %12.6f %12.6f %8.3f  %s\n" c.Obs.Artifact.bench c.Obs.Artifact.old_s
        c.Obs.Artifact.new_s c.Obs.Artifact.ratio
        (match c.Obs.Artifact.verdict with
        | Obs.Artifact.Regression -> "REGRESSION"
        | Obs.Artifact.Improvement -> "improvement"
        | Obs.Artifact.Unchanged -> "ok"))
    comparisons;
  List.iter (Printf.printf "  missing from candidate: %s\n") missing;
  List.iter (Printf.printf "  new in candidate: %s\n") added;
  let n_reg =
    List.length (List.filter (fun c -> c.Obs.Artifact.verdict = Obs.Artifact.Regression) comparisons)
  in
  if comparisons = [] then Printf.printf "  (no benchmarks in common)\n";
  if n_reg > 0 then begin
    Printf.printf "%d regression(s) beyond %.0f%%%s\n" n_reg (100.0 *. !threshold)
      (if !warn_only then " [warn-only: exiting 0]" else "");
    if not !warn_only then exit 1
  end
  else Printf.printf "no regressions.\n"
