(* Compare two bench JSON artifacts (schema scl-bench/1, produced by
   `dune exec bench/main.exe -- --json FILE`).

   Usage:
     bench_diff BASELINE.json CANDIDATE.json
       [--threshold 0.25] [--warn-only] [--sim-strict]

   Exit codes:
     0  no regression beyond the threshold (or --warn-only)
     1  at least one benchmark regressed beyond the threshold, or any
        simulated entry drifted at all under --sim-strict
     2  usage or parse error

   Host wall-clock benchmarks are noisy on shared CI runners, which is why
   the default threshold is a generous 25% on medians and why CI starts
   warn-only; simulated benchmarks are deterministic, so any drift there
   beyond float noise is a real behavioural change.  [--sim-strict] turns
   that observation into a gate: sim-backend entries are compared bitwise
   (timings, shape and counters; removals and unexplained additions count
   too) and any violation fails the run even under --warn-only. *)

let usage =
  "bench_diff BASELINE.json CANDIDATE.json [--threshold FRACTION] [--warn-only] [--sim-strict]"

let () =
  let threshold = ref 0.25 in
  let warn_only = ref false in
  let sim_strict = ref false in
  let positional = ref [] in
  let spec =
    [
      ( "--threshold",
        Arg.Set_float threshold,
        "FRACTION tolerated relative slowdown of the median (default 0.25)" );
      ("--warn-only", Arg.Set warn_only, " report regressions but always exit 0");
      ( "--sim-strict",
        Arg.Set sim_strict,
        " hard-fail on any bitwise drift in sim-backend entries (overrides --warn-only)" );
    ]
  in
  (try Arg.parse spec (fun a -> positional := a :: !positional) usage
   with _ -> exit 2);
  let baseline_path, candidate_path =
    match List.rev !positional with
    | [ a; b ] -> (a, b)
    | _ ->
        prerr_endline usage;
        exit 2
  in
  let load path =
    match Obs.Artifact.load path with
    | Ok f -> f
    | Error e ->
        Printf.eprintf "bench_diff: %s\n" e;
        exit 2
  in
  let baseline = load baseline_path in
  let candidate = load candidate_path in
  let comparisons, missing, added =
    Obs.Artifact.compare_files ~threshold:!threshold ~baseline ~candidate ()
  in
  Printf.printf "bench_diff: %s -> %s (threshold %.0f%%)\n" baseline_path candidate_path
    (100.0 *. !threshold);
  Printf.printf "  %-28s %12s %12s %8s  %s\n" "benchmark" "old (s)" "new (s)" "ratio" "verdict";
  List.iter
    (fun (c : Obs.Artifact.comparison) ->
      Printf.printf "  %-28s %12.6f %12.6f %8.3f  %s\n" c.Obs.Artifact.bench c.Obs.Artifact.old_s
        c.Obs.Artifact.new_s c.Obs.Artifact.ratio
        (match c.Obs.Artifact.verdict with
        | Obs.Artifact.Regression -> "REGRESSION"
        | Obs.Artifact.Improvement -> "improvement"
        | Obs.Artifact.Unchanged -> "ok"))
    comparisons;
  (* Removed/added benchmarks are part of the diff, not a footnote: name
     them with their backend so a vanished sim entry is recognisably a
     behavioural change and not runner noise. *)
  let backend_of (f : Obs.Artifact.file) name =
    match List.find_opt (fun (r : Obs.Artifact.result) -> r.name = name) f.results with
    | Some r -> r.backend
    | None -> "?"
  in
  List.iter
    (fun name -> Printf.printf "  removed (was backend %s): %s\n" (backend_of baseline name) name)
    missing;
  List.iter
    (fun name -> Printf.printf "  added (backend %s): %s\n" (backend_of candidate name) name)
    added;
  let n_reg =
    List.length (List.filter (fun c -> c.Obs.Artifact.verdict = Obs.Artifact.Regression) comparisons)
  in
  if comparisons = [] then Printf.printf "  (no benchmarks in common)\n";
  (* Throughput comparison: benchmarks that export a bytes/sec counter
     (any "*.bytes_per_s" — the slice ping-pong sweep, the flat host
     kernels) get a second table in bandwidth terms — the natural axis
     where wall-clock medians conflate per-message overhead with volume.
     Host throughput is as noisy as host wall-clock, so this table is
     always informational (warn-only); sim-backend counters are already
     compared bitwise by --sim-strict above. *)
  let bps_of (r : Obs.Artifact.result) =
    List.find_map
      (fun (k, v) -> if String.ends_with ~suffix:".bytes_per_s" k && v > 0.0 then Some v else None)
      r.Obs.Artifact.counters
  in
  let throughput =
    List.filter_map
      (fun (b : Obs.Artifact.result) ->
        match
          ( bps_of b,
            List.find_opt
              (fun (c : Obs.Artifact.result) -> c.Obs.Artifact.name = b.Obs.Artifact.name)
              candidate.Obs.Artifact.results )
        with
        | Some old_bps, Some c ->
            Option.map (fun new_bps -> (b.Obs.Artifact.name, old_bps, new_bps)) (bps_of c)
        | _ -> None)
      baseline.Obs.Artifact.results
  in
  if throughput <> [] then begin
    Printf.printf "  %-28s %12s %12s %8s  %s\n" "throughput" "old (MB/s)" "new (MB/s)" "ratio"
      "verdict";
    List.iter
      (fun (name, old_bps, new_bps) ->
        let ratio = old_bps /. new_bps in
        Printf.printf "  %-28s %12.1f %12.1f %8.3f  %s\n" name (old_bps /. 1e6) (new_bps /. 1e6)
          ratio
          (if ratio > 1.0 +. !threshold then "SLOWER [warn-only]"
           else if ratio < 1.0 -. !threshold then "faster"
           else "ok"))
      throughput
  end;
  let strict_failed =
    !sim_strict
    &&
    let violations = Obs.Artifact.strict_sim_violations ~baseline ~candidate in
    List.iter
      (fun (v : Obs.Artifact.strict_violation) ->
        Printf.printf "  SIM-STRICT %-28s %s\n" v.sv_bench v.sv_reason)
      violations;
    match violations with
    | [] ->
        Printf.printf "sim-strict: all simulated entries bitwise-identical.\n";
        false
    | vs ->
        Printf.printf "sim-strict: %d violation(s) — simulated runs are deterministic, so this \
                       is a real behavioural change (refresh the baseline if intended).\n"
          (List.length vs);
        true
  in
  if n_reg > 0 then
    Printf.printf "%d regression(s) beyond %.0f%%%s\n" n_reg (100.0 *. !threshold)
      (if !warn_only then " [warn-only: exiting 0]" else "")
  else Printf.printf "no regressions.\n";
  if strict_failed || (n_reg > 0 && not !warn_only) then exit 1
